package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	w, _ := ByName("ferret")
	orig := NewGenerator(w, 0, 99).Take(5000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("length %d != %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], orig[i])
		}
	}
}

func TestTraceRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records", len(got))
	}
}

func TestWriteTraceRejectsUnaligned(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTrace(&buf, []Access{{Addr: 13}})
	if err == nil {
		t.Fatal("unaligned address accepted")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXX",
		"HFTR",                              // truncated after magic
		"HFTR\x02" + strings.Repeat("0", 8), // bad version
		"HFTR\x01\x05\x00\x00\x00\x00\x00\x00\x00", // count 5, no records
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadTraceRejectsHugeCount(t *testing.T) {
	hdr := "HFTR\x01\xff\xff\xff\xff\xff\xff\xff\xff"
	if _, err := ReadTrace(strings.NewReader(hdr)); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestQuickTraceRoundTrip(t *testing.T) {
	f := func(lines []uint32, writes []bool, gaps []uint8) bool {
		n := len(lines)
		if len(writes) < n {
			n = len(writes)
		}
		if len(gaps) < n {
			n = len(gaps)
		}
		in := make([]Access, n)
		for i := 0; i < n; i++ {
			in[i] = Access{
				Addr:  uint64(lines[i]) * LineBytes,
				Write: writes[i],
				Gap:   int(gaps[i]),
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, in); err != nil {
			return false
		}
		out, err := ReadTrace(&buf)
		if err != nil || len(out) != n {
			return false
		}
		for i := range out {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplayerWrapsAround(t *testing.T) {
	rec := []Access{{Addr: 0}, {Addr: 64}, {Addr: 128}}
	r := NewReplayer(rec)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	for round := 0; round < 3; round++ {
		for i := range rec {
			if got := r.Next(); got != rec[i] {
				t.Fatalf("round %d record %d: %+v", round, i, got)
			}
		}
	}
}

func TestReplayerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty replayer did not panic")
		}
	}()
	NewReplayer(nil)
}

func TestTraceCompactness(t *testing.T) {
	// The format should average well under 8 bytes per record for real
	// workloads (varint deltas).
	w, _ := ByName("streamcluster")
	recs := NewGenerator(w, 0, 5).Take(10000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(len(recs))
	if perRecord > 8 {
		t.Errorf("%.1f bytes/record, want < 8", perRecord)
	}
}
