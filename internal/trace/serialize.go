package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace serialization: a compact varint-delta binary format so generated
// workloads can be archived and replayed bit-exactly (e.g. to compare
// simulator versions, or to feed external tools). Format:
//
//	magic "HFTR" | version u8 | count u64
//	per record: flags u8 (bit0 write) | uvarint(gap) | varint(addr delta/64)
//
// Address deltas are line-granular and signed, keeping typical records at
// 3-5 bytes.

const (
	traceMagic   = "HFTR"
	traceVersion = 1
)

// WriteTrace serializes accesses to w.
func WriteTrace(w io.Writer, accesses []Access) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(accesses)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, a := range accesses {
		if a.Addr%LineBytes != 0 {
			return fmt.Errorf("trace: unaligned address %#x", a.Addr)
		}
		flags := byte(0)
		if a.Write {
			flags = 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		n := binary.PutUvarint(buf[:], uint64(a.Gap))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		line := int64(a.Addr / LineBytes)
		n = binary.PutVarint(buf[:], line-prev)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = line
	}
	return bw.Flush()
}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Access, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	count := binary.LittleEndian.Uint64(hdr)
	const sanityMax = 1 << 32
	if count > sanityMax {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadTrace, count)
	}
	out := make([]Access, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadTrace, i, err)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d gap: %v", ErrBadTrace, i, err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d addr: %v", ErrBadTrace, i, err)
		}
		line := prev + delta
		if line < 0 {
			return nil, fmt.Errorf("%w: record %d negative address", ErrBadTrace, i)
		}
		prev = line
		out = append(out, Access{
			Addr:  uint64(line) * LineBytes,
			Write: flags&1 != 0,
			Gap:   int(gap),
		})
	}
	return out, nil
}

// Replayer feeds a recorded trace through the Generator interface used by
// the simulator: Next returns records in order and loops back to the start
// when exhausted (so trace length and simulation length decouple).
type Replayer struct {
	records []Access
	pos     int
}

// NewReplayer wraps records; it panics on an empty trace.
func NewReplayer(records []Access) *Replayer {
	if len(records) == 0 {
		panic("trace: empty trace")
	}
	return &Replayer{records: records}
}

// Next returns the next record, wrapping around at the end.
func (r *Replayer) Next() Access {
	a := r.records[r.pos]
	r.pos++
	if r.pos == len(r.records) {
		r.pos = 0
	}
	return a
}

// Len returns the number of records.
func (r *Replayer) Len() int { return len(r.records) }
