// Package trace generates deterministic synthetic memory-access traces that
// stand in for the PARSEC benchmark suite used by the paper's gem5
// evaluation. Each named workload is parameterized by working-set size,
// access locality, write fraction, and compute gap so that the two classes
// the paper's Fig. 16 separates — capacity-sensitive (working sets larger
// than the 4MB SRAM LLC but within the 128MB racetrack LLC) and
// capacity-insensitive — are exercised by construction.
package trace

import (
	"fmt"

	"racetrack/hifi/internal/sim"
)

// LineBytes is the cache-line granularity of generated addresses.
const LineBytes = 64

// Access is one memory reference.
type Access struct {
	// Addr is a byte address, line-aligned.
	Addr uint64
	// Write marks stores.
	Write bool
	// Gap is the number of compute cycles since the previous access of
	// the same core.
	Gap int
}

// Workload describes one synthetic benchmark.
type Workload struct {
	Name string
	// CapacitySensitive classifies the workload for Fig. 16/17/18
	// grouping.
	CapacitySensitive bool
	// WorkingSetB is the hot working-set size in bytes.
	WorkingSetB int64
	// ZipfS is the skew of hot-region reuse (higher = tighter locality).
	ZipfS float64
	// StreamFrac is the fraction of accesses that continue a sequential
	// stream (spatial locality).
	StreamFrac float64
	// WriteFrac is the fraction of stores.
	WriteFrac float64
	// GapMean is the mean compute cycles between accesses.
	GapMean float64
	// LatencySensitive marks workloads whose progress is dominated by
	// memory latency (the paper singles out streamcluster).
	LatencySensitive bool
	// PhasePeriod inserts a long compute burst every that-many accesses
	// (0 disables). Real programs have barrier-separated phases; the
	// bursts give the adaptive shift architecture idle intervals to
	// exploit. All cores of a workload share the period, so their bursts
	// roughly overlap.
	PhasePeriod int
	// PhaseGapMean is the mean burst length in cycles.
	PhaseGapMean float64
}

// PARSEC returns the twelve synthetic workloads modeled after the PARSEC
// suite. Working-set sizes follow the suite's published characterization
// qualitatively: canneal/freqmine/ferret/facesim/fluidanimate/dedup stress
// capacity; blackscholes/swaptions/bodytrack/vips/x264/streamcluster do
// not (streamcluster streams, stressing latency instead).
func PARSEC() []Workload {
	return []Workload{
		// Capacity-sensitive: low-skew reuse over working sets that
		// overflow a 4MB SRAM LLC but fit the 128MB racetrack LLC.
		{Name: "canneal", CapacitySensitive: true, WorkingSetB: 24 << 20, ZipfS: 0.30, StreamFrac: 0.05, WriteFrac: 0.25, GapMean: 2, PhasePeriod: 20000, PhaseGapMean: 100e3},
		{Name: "dedup", CapacitySensitive: true, WorkingSetB: 16 << 20, ZipfS: 0.40, StreamFrac: 0.25, WriteFrac: 0.30, GapMean: 3},
		{Name: "facesim", CapacitySensitive: true, WorkingSetB: 20 << 20, ZipfS: 0.45, StreamFrac: 0.35, WriteFrac: 0.35, GapMean: 4},
		{Name: "ferret", CapacitySensitive: true, WorkingSetB: 16 << 20, ZipfS: 0.40, StreamFrac: 0.20, WriteFrac: 0.20, GapMean: 3},
		{Name: "fluidanimate", CapacitySensitive: true, WorkingSetB: 12 << 20, ZipfS: 0.50, StreamFrac: 0.30, WriteFrac: 0.40, GapMean: 3},
		{Name: "freqmine", CapacitySensitive: true, WorkingSetB: 28 << 20, ZipfS: 0.35, StreamFrac: 0.15, WriteFrac: 0.25, GapMean: 2},
		// Capacity-insensitive: working sets within every LLC option, or
		// pure streaming with no temporal reuse.
		{Name: "blackscholes", WorkingSetB: 2 << 20, ZipfS: 1.0, StreamFrac: 0.50, WriteFrac: 0.15, GapMean: 20, PhasePeriod: 10000, PhaseGapMean: 300e3},
		{Name: "bodytrack", WorkingSetB: 3 << 20, ZipfS: 0.9, StreamFrac: 0.40, WriteFrac: 0.20, GapMean: 14},
		{Name: "streamcluster", WorkingSetB: 16 << 20, ZipfS: 0.3, StreamFrac: 0.85, WriteFrac: 0.10, GapMean: 4, LatencySensitive: true},
		{Name: "swaptions", WorkingSetB: 1 << 20, ZipfS: 1.1, StreamFrac: 0.30, WriteFrac: 0.15, GapMean: 18, PhasePeriod: 8000, PhaseGapMean: 250e3},
		{Name: "vips", WorkingSetB: 3 << 20, ZipfS: 0.8, StreamFrac: 0.60, WriteFrac: 0.30, GapMean: 12},
		{Name: "x264", WorkingSetB: 2 << 20, ZipfS: 0.9, StreamFrac: 0.65, WriteFrac: 0.25, GapMean: 10, PhasePeriod: 15000, PhaseGapMean: 150e3},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range PARSEC() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown workload %q", name)
}

// Generator produces one core's access stream for a workload. Streams are
// deterministic: the same (workload, core, seed) always yields the same
// trace.
type Generator struct {
	w      Workload
	rng    *sim.RNG
	lines  int64  // working-set size in lines
	base   uint64 // this core's address-space base
	cursor int64  // sequential stream position (line index)
	dwell  int    // remaining touches on the current stream line
	count  int    // accesses generated (for phase boundaries)
}

// streamDwell is the mean number of touches a streaming access pattern
// makes within one cache line before advancing (sub-line spatial locality:
// ~8-byte elements in a 64-byte line).
const streamDwell = 6

// NewGenerator builds a generator for the given core.
func NewGenerator(w Workload, core int, seed uint64) *Generator {
	if w.WorkingSetB < LineBytes {
		panic("trace: working set smaller than one line")
	}
	g := &Generator{
		w:     w,
		rng:   sim.NewRNG(seed ^ uint64(core)*0x9e3779b97f4a7c15 ^ hashName(w.Name)),
		lines: w.WorkingSetB / LineBytes,
	}
	// Cores share the working set (threads of one program) but start
	// their streams at different phases.
	g.cursor = int64(core) * g.lines / 8 % g.lines
	return g
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Next returns the next access.
func (g *Generator) Next() Access {
	var line int64
	if g.rng.Bool(g.w.StreamFrac) {
		// Streaming dwells on a line for several touches before moving
		// to the next one (sub-line spatial locality).
		if g.dwell > 0 {
			g.dwell--
		} else {
			g.cursor = (g.cursor + 1) % g.lines
			g.dwell = g.rng.Geometric(1.0 / streamDwell)
		}
		line = g.cursor
	} else {
		line = int64(g.rng.Zipf(int(g.lines), g.w.ZipfS))
		// Scatter hot lines across the set-index space so zipf rank 0..k
		// doesn't collapse into a few cache sets.
		line = scatter(line, g.lines)
	}
	gap := 0
	if g.w.GapMean > 0 {
		gap = g.rng.Geometric(1 / (1 + g.w.GapMean))
	}
	g.count++
	if g.w.PhasePeriod > 0 && g.count%g.w.PhasePeriod == 0 {
		// Phase boundary: a long compute burst (e.g. a barrier plus the
		// next phase's setup) with no memory traffic.
		gap += int(g.rng.Exponential(1 / g.w.PhaseGapMean))
	}
	return Access{
		Addr:  g.base + uint64(line)*LineBytes,
		Write: g.rng.Bool(g.w.WriteFrac),
		Gap:   gap,
	}
}

// scatter permutes line indices within the working set with a cheap
// bijective mix so that frequently used (low zipf rank) lines spread over
// the address space.
func scatter(line, n int64) int64 {
	x := uint64(line)
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	return int64(x % uint64(n))
}

// Take returns the next n accesses as a slice (testing convenience).
func (g *Generator) Take(n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
