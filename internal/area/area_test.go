package area

import (
	"math"
	"testing"

	"racetrack/hifi/internal/pecc"
)

func TestStripeF2DomainLimited(t *testing.T) {
	m := Default()
	// Few ports: domain-limited; adding one read port is free.
	a0 := m.StripeF2(71, 0, 2)
	a1 := m.StripeF2(71, 1, 2)
	if a0 != a1 {
		t.Errorf("adding one port in the domain-limited regime changed area: %v -> %v", a0, a1)
	}
}

func TestStripeF2TransistorLimited(t *testing.T) {
	m := Default()
	// Many ports: transistor-limited; each port costs full footprint.
	a20 := m.StripeF2(71, 20, 8)
	a21 := m.StripeF2(71, 21, 8)
	if a21-a20 != m.ReadPortF2 {
		t.Errorf("transistor-limited increment = %v, want %v", a21-a20, m.ReadPortF2)
	}
}

func TestFig7Shape(t *testing.T) {
	m := Default()
	// Paper Fig 7: curves start near 8 F^2/b, rise with added read ports,
	// and sit higher for more R/W ports; the band is roughly 8-16+.
	base := m.Fig7Point(0, 0)
	if base < 6 || base > 10 {
		t.Errorf("Fig7(0,0) = %v, want ~8", base)
	}
	for _, rw := range []int{0, 2, 4, 6, 8} {
		prev := 0.0
		for r := 0; r <= 20; r++ {
			v := m.Fig7Point(r, rw)
			if v < prev {
				t.Fatalf("Fig7 rw=%d not monotone at r=%d", rw, r)
			}
			prev = v
		}
	}
	// More R/W ports never reduce area.
	for r := 0; r <= 20; r += 5 {
		if m.Fig7Point(r, 8) < m.Fig7Point(r, 0) {
			t.Errorf("Fig7 at r=%d: RW=8 below RW=0", r)
		}
	}
	// Transistor-limited tail reaches well above the base.
	if m.Fig7Point(20, 8) < 12 {
		t.Errorf("Fig7(20,8) = %v, want > 12", m.Fig7Point(20, 8))
	}
}

func TestPerDataBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PerDataBit(0,...) did not panic")
		}
	}()
	Default().PerDataBit(0, 10, 0, 0)
}

func TestCellOverheadMatchesTable5(t *testing.T) {
	// p-ECC at the default 8x8 64-bit stripe: area-accounting code length
	// Lseg-1+2m = 9 plus 2m = 2 guards -> 11 extra domains = 17.2%
	// (paper Table 5 reports 17.6%).
	code := pecc.SECDED(8)
	cfg := StripeConfig{
		DataBits:    64,
		SegLen:      8,
		ExtraDomain: code.AreaLength() + code.GuardDomains(),
		ExtraReads:  code.Window(),
	}
	got := cfg.CellOverhead()
	if math.Abs(got-0.176) > 0.01 {
		t.Errorf("p-ECC cell overhead = %.3f, want ~0.176 (Table 5)", got)
	}

	// p-ECC-O: 2(m+1) domains per end + 2m guards = 10 extra = 15.6%
	// (paper: 15.7%).
	oc := pecc.MustNewO(1, 8)
	ocfg := StripeConfig{
		DataBits:    64,
		SegLen:      8,
		ExtraDomain: oc.ExtraDomains(),
		ExtraReads:  2 * (oc.M() + 1),
		ExtraWrites: oc.WritePorts(),
	}
	got = ocfg.CellOverhead()
	if math.Abs(got-0.157) > 0.01 {
		t.Errorf("p-ECC-O cell overhead = %.3f, want ~0.157 (Table 5)", got)
	}
}

func TestPECCOWinsForLongSegments(t *testing.T) {
	// Paper Fig 13: p-ECC-O becomes more area-efficient at Lseg >= 16.
	m := Default()
	perBit := func(segLen int, o bool) float64 {
		if o {
			oc := pecc.MustNewO(1, segLen)
			return m.PerBit(StripeConfig{
				DataBits:    64,
				SegLen:      segLen,
				ExtraDomain: oc.ExtraDomains(),
				ExtraReads:  2 * (oc.M() + 1),
				ExtraWrites: oc.WritePorts(),
			})
		}
		c := pecc.SECDED(segLen)
		return m.PerBit(StripeConfig{
			DataBits:    64,
			SegLen:      segLen,
			ExtraDomain: c.AreaLength() + c.GuardDomains(),
			ExtraReads:  c.Window(),
		})
	}
	if perBit(32, true) >= perBit(32, false) {
		t.Errorf("Lseg=32: p-ECC-O (%.2f) should beat p-ECC (%.2f)",
			perBit(32, true), perBit(32, false))
	}
	// At short segments the difference is small or reversed (paper:
	// "trivial for both" below Lseg 8); assert p-ECC is not drastically
	// worse there.
	if perBit(4, false) > perBit(4, true)*1.2 {
		t.Errorf("Lseg=4: p-ECC (%.2f) drastically worse than p-ECC-O (%.2f)",
			perBit(4, false), perBit(4, true))
	}
}

func TestBaselineConfig(t *testing.T) {
	c := Baseline(64, 8)
	if c.Domains() != 71 {
		t.Errorf("baseline domains = %d, want 71 (64 data + 7 overhead)", c.Domains())
	}
	r, w := c.Ports()
	if r != 0 || w != 8 {
		t.Errorf("baseline ports = %d reads, %d rws; want 0, 8", r, w)
	}
	if c.CellOverhead() != 0 {
		t.Error("baseline cell overhead should be 0")
	}
}

func TestControllerAreas(t *testing.T) {
	ca := Table5Controller()
	if ca.STS != 1.94 || ca.PECC != 54.0 || ca.PECCSAdaptive != 109.4 {
		t.Error("controller areas don't match Table 5")
	}
	// The adaptive controller is the most complex.
	if ca.PECCSAdaptive <= ca.PECCSWorst {
		t.Error("adaptive controller should be larger than worst-case")
	}
}
