package area

import (
	"math"
	"testing"
)

func TestControllerAreaMatchesTable5(t *testing.T) {
	// The gate-level model must land on the paper's synthesized areas
	// within a few percent.
	want := map[string]float64{
		"sts":              1.94,
		"p-ecc":            54.0,
		"p-ecc-o":          54.0,
		"p-ecc-s worst":    54.3,
		"p-ecc-s adaptive": 109.4,
	}
	for kind, w := range want {
		got := ControllerAreaUM2(kind)
		if math.Abs(got-w)/w > 0.05 {
			t.Errorf("%s: %.1f um^2, want %.1f (Table 5)", kind, got, w)
		}
	}
	if ControllerAreaUM2("unknown") != 0 {
		t.Error("unknown kind should be 0")
	}
}

func TestControllerAreaOrdering(t *testing.T) {
	sts := ControllerAreaUM2("sts")
	pecc := ControllerAreaUM2("p-ecc")
	worst := ControllerAreaUM2("p-ecc-s worst")
	adaptive := ControllerAreaUM2("p-ecc-s adaptive")
	if !(sts < pecc && pecc < worst && worst < adaptive) {
		t.Errorf("ordering violated: %v %v %v %v", sts, pecc, worst, adaptive)
	}
	// The adaptive table dominates: roughly 2x the worst-case controller.
	ratio := adaptive / worst
	if ratio < 1.8 || ratio > 2.3 {
		t.Errorf("adaptive/worst ratio = %v, want ~2 (Table 5)", ratio)
	}
}

func TestGateCountsScale(t *testing.T) {
	// Stronger codes need wider windows: detection gates grow with m.
	g1 := PECCDetectGates(1, 3).gateEquivalents()
	g3 := PECCDetectGates(3, 3).gateEquivalents()
	if g3 <= g1 {
		t.Error("detection gates should grow with strength")
	}
	// Longer distances need wider adders.
	d3 := PECCDetectGates(1, 3).gateEquivalents()
	d6 := PECCDetectGates(1, 6).gateEquivalents()
	if d6 <= d3 {
		t.Error("detection gates should grow with distance width")
	}
	// The adaptive sequencer grows with the table span.
	s7 := SequencerGates(true, 7).gateEquivalents()
	s15 := SequencerGates(true, 15).gateEquivalents()
	if s15 <= s7 {
		t.Error("adaptive sequencer should grow with max distance")
	}
}
