// Package area models racetrack-memory array area at the architecture level
// (paper §4.2.3, Fig. 7, Fig. 13, Table 5), standing in for the circuit
// model of [46] and the NVSim runs the paper used.
//
// The central effect (paper Fig. 7): a racetrack stripe is stacked on top
// of its access transistors. With few ports, stripe area is domain-limited
// (adding a read port costs almost nothing); with many ports it becomes
// transistor-limited and every added port costs full transistor area. Area
// is reported in F^2 per data bit, F being the feature size (45 nm).
package area

// Model holds the calibrated area constants. All areas are in F^2.
type Model struct {
	// DomainF2 is the stripe area attributable to one domain (track pitch
	// x domain length, divided by stacking efficiency).
	DomainF2 float64
	// ReadPortF2 is the transistor footprint of a read-only port (one
	// access transistor plus its share of wordline pitch).
	ReadPortF2 float64
	// RWPortF2 is the footprint of a read/write port (one more transistor
	// and two reference domains, paper §2.1).
	RWPortF2 float64
	// ShiftPortF2 is the footprint of the two shift-drive transistors at
	// the stripe ends, combined.
	ShiftPortF2 float64
	// PeripheralShare is a fixed per-stripe share of decoders and sense
	// amplifiers.
	PeripheralShare float64
}

// Default returns constants calibrated so a 64-data-domain stripe with 8
// R/W ports lands at the paper's ~8-16 F^2/bit band of Fig. 7 and the cell
// overhead percentages of Table 5.
func Default() Model {
	return Model{
		DomainF2:        6.8,
		ReadPortF2:      35,
		RWPortF2:        70,
		ShiftPortF2:     70,
		PeripheralShare: 0,
	}
}

// StripeF2 returns the area of one stripe with the given number of domains
// (data + overhead + guards + code), read-only ports and read/write ports:
// the maximum of the domain-limited and transistor-limited footprints plus
// the peripheral share.
func (m Model) StripeF2(domains, readPorts, rwPorts int) float64 {
	domainArea := m.DomainF2 * float64(domains)
	transistorArea := m.ReadPortF2*float64(readPorts) +
		m.RWPortF2*float64(rwPorts) + m.ShiftPortF2
	a := domainArea
	if transistorArea > a {
		a = transistorArea
	}
	return a + m.PeripheralShare
}

// PerDataBit returns F^2 per data bit for a stripe with dataBits data
// domains out of domains total.
func (m Model) PerDataBit(dataBits, domains, readPorts, rwPorts int) float64 {
	if dataBits <= 0 {
		panic("area: non-positive data bits")
	}
	return m.StripeF2(domains, readPorts, rwPorts) / float64(dataBits)
}

// Fig7Point reproduces one point of paper Fig. 7: the area per data bit of
// a 64-bit stripe with the paper's overhead region, rwPorts existing
// read/write ports, and extraReads added read-only ports.
func (m Model) Fig7Point(extraReads, rwPorts int) float64 {
	const dataBits = 64
	domains := dataBits + 7 // overhead region for 8-step segments
	return m.PerDataBit(dataBits, domains, extraReads, rwPorts)
}

// StripeConfig describes a protected stripe for overhead accounting.
type StripeConfig struct {
	DataBits    int // data domains
	SegLen      int // Lseg; data R/W ports = DataBits/SegLen
	ExtraDomain int // guards + code domains beyond data+overhead
	ExtraReads  int // added read-only ports (p-ECC windows)
	ExtraWrites int // added write-capable ports (p-ECC-O ends)
}

// Baseline returns the unprotected configuration for the given geometry:
// data plus the Lseg-1 overhead region, no extra ports.
func Baseline(dataBits, segLen int) StripeConfig {
	return StripeConfig{DataBits: dataBits, SegLen: segLen}
}

// Domains returns the stripe's total domain count: data + overhead region
// (Lseg-1, present in every configuration) + protection extras.
func (c StripeConfig) Domains() int {
	return c.DataBits + c.SegLen - 1 + c.ExtraDomain
}

// Ports returns the port counts (read-only, read/write) including the data
// ports.
func (c StripeConfig) Ports() (reads, rws int) {
	return c.ExtraReads, c.DataBits/c.SegLen + c.ExtraWrites
}

// PerBit returns the configuration's area per data bit under model m.
func (m Model) PerBit(c StripeConfig) float64 {
	reads, rws := c.Ports()
	return m.PerDataBit(c.DataBits, c.Domains(), reads, rws)
}

// CellOverhead returns the fractional domain-count overhead of a protected
// configuration relative to its data bits — the "Cell %" column of the
// paper's Table 5 (which reports 17.6% for p-ECC and 15.7% for p-ECC-O at
// the default 8x8, 64-bit stripe).
func (c StripeConfig) CellOverhead() float64 {
	return float64(c.ExtraDomain) / float64(c.DataBits)
}

// ControllerArea holds the synthesized controller areas of Table 5, in
// square micrometers at 45 nm.
type ControllerArea struct {
	STS           float64
	PECC          float64
	PECCO         float64
	PECCSWorst    float64
	PECCSAdaptive float64
}

// Table5Controller returns the paper's synthesized controller areas.
func Table5Controller() ControllerArea {
	return ControllerArea{
		STS:           1.94,
		PECC:          54.0,
		PECCO:         54.0,
		PECCSWorst:    54.3,
		PECCSAdaptive: 109.4,
	}
}
