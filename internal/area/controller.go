package area

// Gate-level model of the error-aware shift controller (paper §5.1,
// Fig. 9). The controller has four blocks:
//
//   - STS driver: two-stage logic (pulse timer + stage select) and the
//     voltage-division drive network.
//   - p-ECC detection: a customized cyclic adder producing the expected
//     code phase from the current phase and the shift distance, plus XOR
//     comparators against the window read out of the p-ECC ports.
//   - Sequencer (p-ECC-S): distance decomposition per the safe-distance
//     plan; the worst-case variant stores one fixed limit, the adaptive
//     variant stores the interval-threshold table and an interval counter.
//
// Gate counts below are small structural estimates; the conversion to area
// uses a 45 nm standard-cell equivalent calibrated so the synthesized
// totals reproduce the paper's Table 5 (1.94 / 54.0 / 54.3 / 109.4 um^2).

// GateCounts describes one controller block in NAND2-equivalent gates.
type GateCounts struct {
	Logic     int // combinational NAND2 equivalents
	FlipFlops int // state bits
}

// gateEquivalents returns total NAND2 equivalents (a flip-flop weighs ~6).
func (g GateCounts) gateEquivalents() int { return g.Logic + 6*g.FlipFlops }

// um2PerGate is the calibrated NAND2-equivalent cell area at 45 nm,
// including routing overhead, chosen so the Table 5 p-ECC controller
// (54 um^2) corresponds to its structural gate count below.
const um2PerGate = 0.154

// glueGates is the array-level address/strobe glue shared by all p-ECC
// controller variants.
const glueGates = 150

// STSDriverGates returns the STS driver block: the pulse timer, the
// two-stage select FSM, and the drive-strength select logic.
func STSDriverGates() GateCounts {
	return GateCounts{Logic: 7, FlipFlops: 1}
}

// PECCDetectGates returns the detection block for a strength-m code with
// distance-width w bits: the cyclic adder (mod 2(m+1)) over the distance,
// the expected-window generator, and the XOR compare against m+1 read
// bits, plus the head-position registers.
func PECCDetectGates(m, distanceBits int) GateCounts {
	adder := 14 * distanceBits // mod-P add/compare per distance bit
	window := 10 * (m + 1)     // expected-bit generation and XOR compare
	control := 60              // hit/correct FSM
	return GateCounts{
		Logic:     adder + window + control,
		FlipFlops: distanceBits + 8, // head-position + status registers
	}
}

// SequencerGates returns the safe-distance sequencer. The worst-case
// variant is a fixed step limit folded into the existing distance datapath
// — only a couple of comparator gates (the paper's Table 5 shows just
// +0.3 um^2 over plain p-ECC). The adaptive variant adds the per-distance
// interval-threshold table (~4 Pareto rows per distance, a threshold
// comparator each) and the interval counter, which is why its synthesized
// area roughly doubles (109.4 vs 54.3 um^2 in Table 5).
func SequencerGates(adaptive bool, maxDist int) GateCounts {
	if !adaptive {
		return GateCounts{Logic: 2}
	}
	rows := 0
	for d := 2; d <= maxDist; d++ {
		rows += 4 // Pareto rows per distance (average)
	}
	return GateCounts{
		Logic:     12*rows + 4, // threshold compare per row + select
		FlipFlops: 11,          // interval counter + row index
	}
}

// ControllerAreaUM2 returns the synthesized-area estimate in um^2 at 45 nm
// for each protection mechanism, derived from the gate model.
func ControllerAreaUM2(kind string) float64 {
	switch kind {
	case "sts":
		return float64(STSDriverGates().gateEquivalents()) * um2PerGate
	case "p-ecc", "p-ecc-o":
		g := STSDriverGates().gateEquivalents() +
			PECCDetectGates(1, 3).gateEquivalents() +
			glueGates
		return float64(g) * um2PerGate
	case "p-ecc-s worst":
		g := STSDriverGates().gateEquivalents() +
			PECCDetectGates(1, 3).gateEquivalents() +
			SequencerGates(false, 7).gateEquivalents() +
			glueGates
		return float64(g) * um2PerGate
	case "p-ecc-s adaptive":
		g := STSDriverGates().gateEquivalents() +
			PECCDetectGates(1, 3).gateEquivalents() +
			SequencerGates(true, 7).gateEquivalents() +
			glueGates
		return float64(g) * um2PerGate
	default:
		return 0
	}
}
