package memsim

import (
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/shiftctrl"
)

func TestEagerHeadMovesMore(t *testing.T) {
	w := smallWorkload("ferret", 128<<10)
	lazyCfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	lazy, err := Run(w, lazyCfg)
	if err != nil {
		t.Fatal(err)
	}
	eagerCfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	eagerCfg.EagerHead = true
	eager, err := Run(w, eagerCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Eager returns double total movement (there and back).
	if eager.ShiftSteps <= lazy.ShiftSteps {
		t.Errorf("eager steps %d should exceed lazy %d", eager.ShiftSteps, lazy.ShiftSteps)
	}
	// And therefore more energy and higher expected DUE exposure.
	if eager.Energy.ShiftNJ <= lazy.Energy.ShiftNJ {
		t.Error("eager should pay more shift energy")
	}
	if eager.Tracker.ExpectedDUE() <= lazy.Tracker.ExpectedDUE() {
		t.Error("eager should have more reliability exposure")
	}
}

func TestEagerHeadKeepsHeadsAtZero(t *testing.T) {
	// With the eager policy every access starts from offset 0, so every
	// shifting access moves exactly its target offset. The average
	// distance must therefore match the mean target offset, which for
	// way-major mapping exceeds the lazy policy's locality-driven mean.
	w := smallWorkload("ferret", 128<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	cfg.EagerHead = true
	r, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ShiftOps == 0 {
		t.Fatal("no shifts")
	}
	// Return shifts and access shifts are symmetric: total steps even.
	if r.ShiftSteps%2 != 0 {
		t.Errorf("eager total steps %d should be even (every move is mirrored)", r.ShiftSteps)
	}
}
