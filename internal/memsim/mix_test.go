package memsim

import (
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/trace"
)

func TestMixRunsDifferentProgramsPerCore(t *testing.T) {
	cfg := smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	cfg.Cores = 4
	cfg.Mix = []trace.Workload{
		smallWorkload("canneal", 128<<10),
		smallWorkload("vips", 16<<10),
		smallWorkload("swaptions", 16<<10),
		smallWorkload("streamcluster", 64<<10),
	}
	r, err := Run(cfg.Mix[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1.Hits+r.L1.Misses != uint64(4*cfg.AccessesPerCore) {
		t.Errorf("access count %d", r.L1.Hits+r.L1.Misses)
	}
	if r.ShiftOps == 0 {
		t.Error("no shifts in multiprogram run")
	}
}

func TestMixAddressSpacesDisjoint(t *testing.T) {
	// Two cores running the *same* program in mix mode must not share
	// cache lines: LLC misses should roughly double versus the shared
	// (multithreaded) configuration where cores share a working set.
	shared := smallConfig(energy.SRAM, shiftctrl.Baseline)
	shared.Cores = 2
	w := smallWorkload("vips", 16<<10)
	rs, err := Run(w, shared)
	if err != nil {
		t.Fatal(err)
	}
	mixed := smallConfig(energy.SRAM, shiftctrl.Baseline)
	mixed.Cores = 2
	mixed.Mix = []trace.Workload{w, w}
	rm, err := Run(w, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if rm.L3.Misses <= rs.L3.Misses {
		t.Errorf("disjoint programs should miss more: mixed %d vs shared %d",
			rm.L3.Misses, rs.L3.Misses)
	}
}

func TestOffsetSource(t *testing.T) {
	w := smallWorkload("vips", 16<<10)
	inner := trace.NewGenerator(w, 0, 1)
	ref := trace.NewGenerator(w, 0, 1)
	src := &offsetSource{inner: inner, base: 1 << 36}
	for i := 0; i < 100; i++ {
		got := src.Next()
		want := ref.Next()
		if got.Addr != want.Addr+1<<36 {
			t.Fatalf("offset not applied at %d", i)
		}
		if got.Write != want.Write || got.Gap != want.Gap {
			t.Fatalf("non-address fields altered at %d", i)
		}
	}
}
