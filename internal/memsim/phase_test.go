package memsim

import (
	"context"
	"strings"
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry"
)

// sumCounters totals every counter series whose name starts with prefix
// (labelled series share the metric-name prefix).
func sumCounters(s telemetry.Snapshot, prefix string) float64 {
	var total float64
	for _, c := range s.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			total += c.Value
		}
	}
	return total
}

func gaugeValue(t *testing.T, s telemetry.Snapshot, name string) float64 {
	t.Helper()
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %s not in snapshot", name)
	return 0
}

// TestWarmupBoundaryResetsResult asserts the phase boundary semantics:
// Result covers only the measure window, while the monotonic telemetry
// counters keep accumulating across both phases.
func TestWarmupBoundaryResetsResult(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	cfg.WarmupAccessesPerCore = 2000
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg

	r, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	measured := cfg.Cores * (cfg.AccessesPerCore - cfg.WarmupAccessesPerCore)
	if got := r.L1.Hits + r.L1.Misses; got != uint64(measured) {
		t.Errorf("Result L1 accesses = %d, want measure window only = %d", got, measured)
	}

	snap := reg.Snapshot()
	// Telemetry saw warmup + measure traffic; the Result only the latter.
	l1Total := sumCounters(snap, telemetry.MetricCacheHits) + sumCounters(snap, telemetry.MetricCacheMisses)
	allAccesses := float64(cfg.Cores * cfg.AccessesPerCore)
	if l1Total < allAccesses {
		t.Errorf("telemetry cache accesses = %.0f, want >= %0.f (both phases)", l1Total, allAccesses)
	}
	if got := sumCounters(snap, telemetry.MetricSimWarmupAccesses); got != float64(cfg.Cores*cfg.WarmupAccessesPerCore) {
		t.Errorf("warmup counter = %.0f, want %d", got, cfg.Cores*cfg.WarmupAccessesPerCore)
	}
	if got := gaugeValue(t, snap, telemetry.MetricSimPhase); got != 1 {
		t.Errorf("phase gauge = %v, want 1 after the run", got)
	}

	// A warmed cache starts the measure window with a populated hierarchy:
	// the same measure-length run without warmup must report at least as
	// many L1 misses (cold start) as the warmed one.
	cold := cfg
	cold.WarmupAccessesPerCore = 0
	cold.AccessesPerCore = cfg.AccessesPerCore - cfg.WarmupAccessesPerCore
	cold.Metrics = nil
	rc, err := Run(w, cold)
	if err != nil {
		t.Fatal(err)
	}
	if rc.L1.Misses < r.L1.Misses {
		t.Errorf("cold run misses (%d) < warmed run misses (%d): warmup did not pre-fill",
			rc.L1.Misses, r.L1.Misses)
	}
}

// TestWarmupPhaseSpans asserts the warmup/measure boundary shows up in the
// span tree: both phase spans exist under the run root, and the measure
// span's metric deltas cover only its own window.
func TestWarmupPhaseSpans(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	cfg.WarmupAccessesPerCore = 2000
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	col := telemetry.NewSpanCollector(reg)
	ctx := telemetry.WithCollector(context.Background(), col)

	if _, err := RunCtx(ctx, w, cfg); err != nil {
		t.Fatal(err)
	}
	export := col.Export()
	byName := map[string]telemetry.SpanRecord{}
	for _, sp := range export.Spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["memsim:ferret"]
	if !ok {
		t.Fatalf("no memsim root span; got %d spans", len(export.Spans))
	}
	for _, name := range []string{"setup", "warmup", "measure"} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing", name)
		}
		if sp.Parent != root.ID {
			t.Errorf("span %q parent = %d, want root %d", name, sp.Parent, root.ID)
		}
		if sp.DurNS <= 0 {
			t.Errorf("span %q has no duration", name)
		}
	}

	// Phase spans carry per-span counter deltas; both phases moved the
	// cache counters, and the two deltas sum to the run's total.
	delta := func(name, prefix string) float64 {
		var total float64
		for _, m := range byName[name].Metrics {
			if strings.HasPrefix(m.Name, prefix) {
				total += m.Value
			}
		}
		return total
	}
	warm := delta("warmup", telemetry.MetricCacheMisses)
	meas := delta("measure", telemetry.MetricCacheMisses)
	if warm <= 0 || meas <= 0 {
		t.Fatalf("phase spans missing cache-miss deltas: warmup=%v measure=%v", warm, meas)
	}
	total := sumCounters(reg.Snapshot(), telemetry.MetricCacheMisses)
	if got := warm + meas; got > total || got < 0.9*total {
		t.Errorf("phase deltas %v + %v should cover the run total %v", warm, meas, total)
	}
}

func TestWarmupValidation(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.Baseline)
	cfg.WarmupAccessesPerCore = cfg.AccessesPerCore // not strictly less
	if _, err := Run(w, cfg); err == nil {
		t.Fatal("warmup >= accesses accepted")
	}
	cfg.WarmupAccessesPerCore = -1
	if _, err := Run(w, cfg); err == nil {
		t.Fatal("negative warmup accepted")
	}
}
