package memsim

import (
	"testing"

	"racetrack/hifi/internal/cache"
	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/shiftctrl"
)

// Geometry-variant runs: the simulator must support the Fig 12/13/15
// stripe configurations end to end, not just analytically.

func geomConfig(segLen int) Config {
	cfg := smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	cfg.Geometry = cache.RTMGeometry{
		StripesPerGroup: 512,
		DataBits:        64,
		SegLen:          segLen,
		LineBytes:       64,
	}
	return cfg
}

func TestGeometrySegLen4(t *testing.T) {
	w := smallWorkload("ferret", 128<<10)
	r, err := Run(w, geomConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.ShiftOps == 0 {
		t.Fatal("no shifts with SegLen 4")
	}
	// Max distance is 3 with 16 ports.
	if r.AvgShiftDistance >= 3 {
		t.Errorf("avg distance %v should be < 3 with SegLen 4", r.AvgShiftDistance)
	}
}

func TestGeometrySegLen16(t *testing.T) {
	w := smallWorkload("ferret", 128<<10)
	r, err := Run(w, geomConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if r.ShiftOps == 0 {
		t.Fatal("no shifts with SegLen 16")
	}
	if r.AvgShiftDistance >= 15 {
		t.Errorf("avg distance %v out of range", r.AvgShiftDistance)
	}
}

func TestGeometryShorterSegmentsShiftLess(t *testing.T) {
	// More ports (shorter segments) reduce total movement: the
	// fundamental area/latency trade of §2.1.
	w := smallWorkload("ferret", 128<<10)
	r4, err := Run(w, geomConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Run(w, geomConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if r4.ShiftSteps >= r16.ShiftSteps {
		t.Errorf("SegLen 4 steps (%d) should be below SegLen 16 (%d)",
			r4.ShiftSteps, r16.ShiftSteps)
	}
	// And lower reliability exposure per the shorter distances.
	if r4.Tracker.ExpectedDUE() >= r16.Tracker.ExpectedDUE() {
		t.Errorf("SegLen 4 DUE exposure (%g) should be below SegLen 16 (%g)",
			r4.Tracker.ExpectedDUE(), r16.Tracker.ExpectedDUE())
	}
}

func TestGeometrySegLen2Baseline(t *testing.T) {
	// SegLen 2 can't host SECDED in-region p-ECC but the baseline and
	// p-ECC-O schemes still run.
	w := smallWorkload("vips", 64<<10)
	cfg := geomConfig(2)
	cfg.Scheme = shiftctrl.PECCO
	r, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgShiftDistance > 1 {
		t.Errorf("SegLen 2 distances must be 0 or 1, avg %v", r.AvgShiftDistance)
	}
}
