package memsim

import (
	"math"
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/trace"
)

// smallConfig returns a scaled-down system that runs in milliseconds.
func smallConfig(t energy.Tech, s shiftctrl.Scheme) Config {
	cfg := DefaultConfig(t, s)
	cfg.AccessesPerCore = 5000
	cfg.L1Capacity = 4 << 10
	cfg.L2Capacity = 32 << 10
	cfg.L3Capacity = 256 << 10
	return cfg
}

// smallWorkload shrinks a workload's working set proportionally to the
// scaled-down hierarchy.
func smallWorkload(name string, wsB int64) trace.Workload {
	w, err := trace.ByName(name)
	if err != nil {
		panic(err)
	}
	w.WorkingSetB = wsB
	return w
}

func TestRunBasics(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	r, err := Run(w, smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Seconds <= 0 {
		t.Fatal("no time simulated")
	}
	if r.L1.Hits+r.L1.Misses != 4*5000 {
		t.Errorf("L1 accesses = %d, want 20000", r.L1.Hits+r.L1.Misses)
	}
	if r.ShiftOps == 0 {
		t.Error("racetrack LLC performed no shifts")
	}
	if r.Energy.DynamicNJ() <= 0 || r.Energy.LeakageJ <= 0 {
		t.Error("energy not accounted")
	}
	if r.Tracker.ExpectedDUE() <= 0 {
		t.Error("no expected DUEs tracked")
	}
}

func TestRunDeterministic(t *testing.T) {
	w := smallWorkload("vips", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	a, _ := Run(w, cfg)
	b, _ := Run(w, cfg)
	if a.Cycles != b.Cycles || a.ShiftSteps != b.ShiftSteps {
		t.Error("simulation not deterministic")
	}
}

func TestSRAMHasNoShifts(t *testing.T) {
	w := smallWorkload("vips", 64<<10)
	r, err := Run(w, smallConfig(energy.SRAM, shiftctrl.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if r.ShiftOps != 0 || r.Energy.ShiftNJ != 0 {
		t.Error("SRAM config recorded shifts")
	}
	if r.Tracker.ExpectedDUE() != 0 {
		t.Error("SRAM config tracked position errors")
	}
}

func TestIdealRemovesShiftLatency(t *testing.T) {
	w := smallWorkload("ferret", 128<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	real, _ := Run(w, cfg)
	cfg.Ideal = true
	ideal, _ := Run(w, cfg)
	if ideal.Cycles >= real.Cycles {
		t.Errorf("ideal (%d cycles) not faster than real (%d)", ideal.Cycles, real.Cycles)
	}
	// Interleaving on the shared LLC differs slightly when latencies
	// change, so shift counts may drift a little but not systematically.
	ratio := float64(ideal.ShiftOps) / float64(real.ShiftOps)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("ideal shift ops %d vs real %d: drift too large", ideal.ShiftOps, real.ShiftOps)
	}
}

func TestPECCOSplitsShifts(t *testing.T) {
	w := smallWorkload("ferret", 128<<10)
	secded, _ := Run(w, smallConfig(energy.Racetrack, shiftctrl.SECDED))
	pecco, _ := Run(w, smallConfig(energy.Racetrack, shiftctrl.PECCO))
	if pecco.ShiftOps <= secded.ShiftOps {
		t.Errorf("p-ECC-O ops (%d) should exceed SECDED ops (%d)", pecco.ShiftOps, secded.ShiftOps)
	}
	// Total distance is scheme-independent up to interleaving noise on
	// the shared LLC.
	ratio := float64(pecco.ShiftSteps) / float64(secded.ShiftSteps)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("shift steps drifted too much across schemes: %d vs %d", pecco.ShiftSteps, secded.ShiftSteps)
	}
	if pecco.ShiftCycles <= secded.ShiftCycles {
		t.Error("p-ECC-O should pay more shift latency")
	}
	if pecco.Energy.ShiftNJ <= secded.Energy.ShiftNJ {
		t.Error("p-ECC-O should pay more shift energy")
	}
}

func TestSchemeReliabilityOrdering(t *testing.T) {
	// DUE exposure: SED detects but can't correct (high DUE); SECDED
	// corrects +-1 (DUE only on +-2); safe-distance schemes lower it
	// further by limiting distances.
	w := smallWorkload("ferret", 128<<10)
	due := func(s shiftctrl.Scheme) float64 {
		r, _ := Run(w, smallConfig(energy.Racetrack, s))
		return r.Tracker.ExpectedDUE()
	}
	sed := due(shiftctrl.SED)
	secded := due(shiftctrl.SECDED)
	worst := due(shiftctrl.PECCSWorst)
	if !(sed > secded) {
		t.Errorf("SED DUE (%g) should exceed SECDED (%g)", sed, secded)
	}
	if !(secded >= worst) {
		t.Errorf("SECDED DUE (%g) should be >= p-ECC-S worst (%g)", secded, worst)
	}
}

func TestBaselineSDCDominates(t *testing.T) {
	w := smallWorkload("ferret", 128<<10)
	r, _ := Run(w, smallConfig(energy.Racetrack, shiftctrl.Baseline))
	if r.Tracker.ExpectedSDC() <= 0 {
		t.Fatal("baseline tracked no SDC exposure")
	}
	if r.Tracker.ExpectedDUE() != 0 {
		t.Error("baseline detects nothing; DUE must be zero")
	}
	prot, _ := Run(w, smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive))
	if prot.Tracker.ExpectedSDC() >= r.Tracker.ExpectedSDC()/1e6 {
		t.Error("protection should cut SDC exposure by many orders of magnitude")
	}
}

func TestCapacitySensitivity(t *testing.T) {
	// A working set that fits the racetrack LLC but overflows the SRAM
	// LLC must run faster on racetrack (Fig 16's capacity-sensitive
	// case). Scaled: L3 SRAM 64KB vs RM 512KB, working set 256KB.
	w := smallWorkload("canneal", 256<<10)
	w.GapMean = 2
	sramCfg := smallConfig(energy.SRAM, shiftctrl.Baseline)
	sramCfg.L3Capacity = 64 << 10
	sramCfg.AccessesPerCore = 20000
	rmCfg := smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	rmCfg.L3Capacity = 512 << 10
	rmCfg.AccessesPerCore = 20000
	sram, _ := Run(w, sramCfg)
	rm, _ := Run(w, rmCfg)
	if rm.Cycles >= sram.Cycles {
		t.Errorf("capacity-sensitive workload: RM (%d cycles) should beat small SRAM (%d)",
			rm.Cycles, sram.Cycles)
	}
	if rm.L3.MissRate() >= sram.L3.MissRate() {
		t.Errorf("RM miss rate %.3f should be below SRAM %.3f",
			rm.L3.MissRate(), sram.L3.MissRate())
	}
}

func TestProtectionOverheadSmall(t *testing.T) {
	// Paper: p-ECC-S adaptive costs ~0.2% execution time over
	// unprotected racetrack; allow a loose bound in the scaled system.
	w := smallWorkload("ferret", 128<<10)
	base, _ := Run(w, smallConfig(energy.Racetrack, shiftctrl.Baseline))
	adaptive, _ := Run(w, smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive))
	overhead := float64(adaptive.Cycles)/float64(base.Cycles) - 1
	if overhead < 0 {
		t.Errorf("protection made execution faster? overhead=%v", overhead)
	}
	if overhead > 0.10 {
		t.Errorf("adaptive overhead = %.1f%%, want small (paper: 0.2%%)", overhead*100)
	}
}

func TestMTTFComputable(t *testing.T) {
	w := smallWorkload("ferret", 128<<10)
	r, _ := Run(w, smallConfig(energy.Racetrack, shiftctrl.SECDED))
	due := r.Tracker.DUEMTTF()
	if math.IsNaN(due) || due <= 0 {
		t.Errorf("DUE MTTF = %v", due)
	}
	sdc := r.Tracker.SDCMTTF()
	if sdc <= due {
		t.Errorf("SECDED SDC MTTF (%g) should exceed DUE MTTF (%g)", sdc, due)
	}
}

func TestIPCProxy(t *testing.T) {
	w := smallWorkload("vips", 64<<10)
	r, _ := Run(w, smallConfig(energy.SRAM, shiftctrl.Baseline))
	ipc := r.IPCProxy()
	if ipc <= 0 || ipc > 1 {
		t.Errorf("IPC proxy = %v, want (0,1]", ipc)
	}
}

func TestZeroCoresRejected(t *testing.T) {
	w := smallWorkload("vips", 64<<10)
	cfg := smallConfig(energy.SRAM, shiftctrl.Baseline)
	cfg.Cores = -1
	if _, err := Run(w, cfg); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestSTTSlowWrites(t *testing.T) {
	// STT-RAM's 41-cycle writes should make a write-heavy workload
	// slower on STT than the write path alone on racetrack-ideal.
	w := smallWorkload("fluidanimate", 128<<10) // WriteFrac 0.40
	stt, _ := Run(w, smallConfig(energy.STTRAM, shiftctrl.Baseline))
	if stt.Cycles == 0 {
		t.Fatal("no simulation")
	}
	// Sanity only: STT config uses STT costs.
	if stt.Energy.ShiftNJ != 0 {
		t.Error("STT recorded shift energy")
	}
}
