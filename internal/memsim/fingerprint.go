package memsim

import (
	"encoding/json"
	"fmt"

	"racetrack/hifi/internal/trace"
)

// FingerprintSchema versions the fingerprint layout; bump it whenever
// simulator behaviour changes in a result-affecting way that the config
// fields cannot express, so stale engine-cache entries are invalidated.
const FingerprintSchema = 1

// fingerprint is the canonical, JSON-stable projection of a resolved
// Config plus its workload: every field that affects a Result and
// nothing that does not (Metrics, Tracer, Sampler, Events, and the span
// context are observability-only). Field order is fixed by the struct
// declaration, so equal inputs marshal to equal bytes.
type fingerprint struct {
	Schema   int     `json:"schema"`
	Cores    int     `json:"cores"`
	ClockHz  float64 `json:"clock_hz"`
	Tech     string  `json:"tech"`
	Scheme   string  `json:"scheme"`
	Ideal    bool    `json:"ideal"`
	Geometry struct {
		StripesPerGroup int `json:"stripes_per_group"`
		DataBits        int `json:"data_bits"`
		SegLen          int `json:"seg_len"`
		LineBytes       int `json:"line_bytes"`
	} `json:"geometry"`
	Accesses  int              `json:"accesses_per_core"`
	Warmup    int              `json:"warmup_accesses_per_core"`
	Seed      uint64           `json:"seed"`
	TargetDUE float64          `json:"target_due"`
	L1        int64            `json:"l1_capacity"`
	L2        int64            `json:"l2_capacity"`
	L3        int64            `json:"l3_capacity"`
	L1W       int              `json:"l1_ways"`
	L2W       int              `json:"l2_ways"`
	L3W       int              `json:"l3_ways"`
	Eager     bool             `json:"eager_head"`
	Promo     int              `json:"promo_entries"`
	Workload  trace.Workload   `json:"workload"`
	Mix       []trace.Workload `json:"mix,omitempty"`
	// Faults is the fault plan's canonical JSON; empty (the nominal
	// device) is omitted, so plan-free fingerprints are byte-identical
	// to those produced before fault injection existed.
	Faults string `json:"faults,omitempty"`
}

// Fingerprint returns the canonical identity of the resolved
// configuration running workload w — the content-addressed cache-key
// input used by the experiment engine (see docs/engine.md). Defaults
// are filled first, so a zero field and its explicit default value
// fingerprint identically.
//
// Configs carrying replayed Sources are not fingerprintable: the access
// stream lives outside the config, so the identity would be incomplete
// and the cache would serve wrong results. Callers must not route such
// runs through a cached engine; Fingerprint panics to make the misuse
// loud.
func (c Config) Fingerprint(w trace.Workload) string {
	if c.Sources != nil {
		panic("memsim: Fingerprint: configs with replayed Sources have no canonical identity")
	}
	c.fillDefaults()
	var fp fingerprint
	fp.Schema = FingerprintSchema
	fp.Cores = c.Cores
	fp.ClockHz = c.ClockHz
	fp.Tech = fmt.Sprint(c.Tech)
	fp.Scheme = fmt.Sprint(c.Scheme)
	fp.Ideal = c.Ideal
	fp.Geometry.StripesPerGroup = c.Geometry.StripesPerGroup
	fp.Geometry.DataBits = c.Geometry.DataBits
	fp.Geometry.SegLen = c.Geometry.SegLen
	fp.Geometry.LineBytes = c.Geometry.LineBytes
	fp.Accesses = c.AccessesPerCore
	fp.Warmup = c.WarmupAccessesPerCore
	fp.Seed = c.Seed
	fp.TargetDUE = c.TargetDUE
	fp.L1, fp.L2, fp.L3 = c.L1Capacity, c.L2Capacity, c.L3Capacity
	fp.L1W, fp.L2W, fp.L3W = c.L1Ways, c.L2Ways, c.L3Ways
	fp.Eager = c.EagerHead
	fp.Promo = c.PromoEntries
	fp.Workload = w
	fp.Mix = c.Mix
	fp.Faults = c.FaultPlan.Canonical()
	b, err := json.Marshal(fp)
	if err != nil {
		panic(fmt.Sprintf("memsim: Fingerprint: %v", err))
	}
	return "memsim|" + string(b)
}
