package memsim

// promoBuffer is a small fully-associative SRAM buffer in front of the
// racetrack LLC data array, modeled after the shift-aware promotion buffer
// of the STAG architecture the paper cites ([43]): lines that hit in the
// buffer are served at SRAM speed without any shift, absorbing the shift
// traffic of hot lines. Lines are promoted on access; dirty lines are
// flushed back into the racetrack array on eviction, paying the alignment
// shift then (off the critical path).
type promoBuffer struct {
	entries []promoEntry
	// Hits and Evictions count buffer behaviour; DirtyFlushes counts
	// evictions that required a racetrack writeback shift.
	Hits        uint64
	Misses      uint64
	DirtyFlush  uint64
	insertClock uint64
}

type promoEntry struct {
	addr  uint64
	valid bool
	dirty bool
	used  uint64
	// set/way remember the array slot so the flush shift can be planned.
	set, way int
}

// newPromoBuffer returns a buffer with n entries; n <= 0 returns nil (no
// buffer configured).
func newPromoBuffer(n int) *promoBuffer {
	if n <= 0 {
		return nil
	}
	return &promoBuffer{entries: make([]promoEntry, n)}
}

// lookup reports whether addr is resident, updating recency and dirtiness.
func (p *promoBuffer) lookup(addr uint64, write bool) bool {
	p.insertClock++
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.addr == addr {
			e.used = p.insertClock
			if write {
				e.dirty = true
			}
			p.Hits++
			return true
		}
	}
	p.Misses++
	return false
}

// insert promotes addr, returning the evicted entry if it was dirty (the
// caller owes a writeback shift to its array slot).
func (p *promoBuffer) insert(addr uint64, write bool, set, way int) (flush promoEntry, dirty bool) {
	p.insertClock++
	victim := 0
	oldest := ^uint64(0)
	for i := range p.entries {
		e := &p.entries[i]
		if !e.valid {
			victim = i
			oldest = 0
			break
		}
		if e.used < oldest {
			oldest = e.used
			victim = i
		}
	}
	old := p.entries[victim]
	p.entries[victim] = promoEntry{
		addr: addr, valid: true, dirty: write, used: p.insertClock,
		set: set, way: way,
	}
	if old.valid && old.dirty {
		p.DirtyFlush++
		return old, true
	}
	return promoEntry{}, false
}

// invalidate drops addr if resident (the L3 line was evicted or
// invalidated under it).
func (p *promoBuffer) invalidate(addr uint64) {
	for i := range p.entries {
		if p.entries[i].valid && p.entries[i].addr == addr {
			p.entries[i].valid = false
			return
		}
	}
}
