package memsim

import (
	"bytes"
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/trace"
)

func TestReplayMatchesLiveGeneration(t *testing.T) {
	// Recording a workload's streams and replaying them must reproduce
	// the simulation bit-exactly.
	w := smallWorkload("vips", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	cfg.Cores = 2
	live, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Record the same streams through the serializer.
	var sources []Source
	for core := 0; core < cfg.Cores; core++ {
		recs := trace.NewGenerator(w, core, cfg.Seed).Take(cfg.AccessesPerCore)
		var buf bytes.Buffer
		if err := trace.WriteTrace(&buf, recs); err != nil {
			t.Fatal(err)
		}
		back, err := trace.ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, trace.NewReplayer(back))
	}
	cfg.Sources = sources
	replayed, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if live.Cycles != replayed.Cycles {
		t.Errorf("cycles differ: live %d vs replay %d", live.Cycles, replayed.Cycles)
	}
	if live.ShiftSteps != replayed.ShiftSteps {
		t.Errorf("shift steps differ: %d vs %d", live.ShiftSteps, replayed.ShiftSteps)
	}
	if live.L3.Misses != replayed.L3.Misses {
		t.Errorf("L3 misses differ: %d vs %d", live.L3.Misses, replayed.L3.Misses)
	}
}

func TestReplayWrapsShortTrace(t *testing.T) {
	// A trace shorter than AccessesPerCore loops; the run completes.
	w := smallWorkload("vips", 64<<10)
	cfg := smallConfig(energy.SRAM, shiftctrl.Baseline)
	cfg.Cores = 1
	cfg.AccessesPerCore = 5000
	recs := trace.NewGenerator(w, 0, 1).Take(100)
	cfg.Sources = []Source{trace.NewReplayer(recs)}
	r, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1.Hits+r.L1.Misses != 5000 {
		t.Errorf("accesses = %d, want 5000", r.L1.Hits+r.L1.Misses)
	}
}
