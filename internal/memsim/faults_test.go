package memsim

import (
	"math"
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/faults"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry"
)

// TestFaultPlanNilIsNominal: a nil plan, an empty plan, and a config
// that predates the FaultPlan field must all produce the same
// fingerprint bytes and the same simulated result — the zero-cost
// "injection off" contract the engine cache depends on.
func TestFaultPlanNilIsNominal(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)

	bare := cfg
	withNil := cfg
	withNil.FaultPlan = nil
	withEmpty := cfg
	withEmpty.FaultPlan = (&faults.Plan{}).Norm()

	fp := bare.Fingerprint(w)
	if got := withNil.Fingerprint(w); got != fp {
		t.Errorf("nil-plan fingerprint differs:\n%s\n%s", got, fp)
	}
	if got := withEmpty.Fingerprint(w); got != fp {
		t.Errorf("normalized-empty-plan fingerprint differs:\n%s\n%s", got, fp)
	}

	a, err := Run(w, bare)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, withNil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Tracker.SDCMTTF() != b.Tracker.SDCMTTF() ||
		a.Tracker.DUEMTTF() != b.Tracker.DUEMTTF() {
		t.Errorf("nil plan changed the simulation: %+v vs %+v", a.Cycles, b.Cycles)
	}
}

// TestFaultPlanChangesFingerprint: a non-empty plan must key the cache
// differently from the nominal device, and differently per intensity.
func TestFaultPlanChangesFingerprint(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	plan, err := faults.Preset("temp")
	if err != nil {
		t.Fatal(err)
	}

	nominal := cfg.Fingerprint(w)
	cfg.FaultPlan = plan
	injected := cfg.Fingerprint(w)
	if injected == nominal {
		t.Error("fault plan not reflected in the fingerprint")
	}
	cfg.FaultPlan = plan.Scale(2)
	if got := cfg.Fingerprint(w); got == injected || got == nominal {
		t.Error("scaled plan does not get its own fingerprint")
	}
	cfg.FaultPlan = plan.Scale(0) // disabled injectors: inert but still a distinct key
	if got := cfg.Fingerprint(w); got == injected || got == nominal {
		t.Error("disabled plan does not get its own fingerprint")
	}
}

// TestFaultPlanDegradesMTTF: running under the temperature-excursion
// preset must accrue strictly more failure mass (lower MTTF) than the
// nominal device, and the degradation must deepen with intensity.
func TestFaultPlanDegradesMTTF(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	nominal, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := faults.Preset("temp")
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = plan
	hot, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nm, hm := nominal.Tracker.DUEMTTF(), hot.Tracker.DUEMTTF()
	if !(hm < nm) {
		t.Errorf("temp plan did not degrade DUE MTTF: nominal %g, injected %g", nm, hm)
	}
	if math.IsNaN(hm) || hm <= 0 {
		t.Errorf("degraded MTTF not positive and finite: %g", hm)
	}

	cfg.FaultPlan = plan.Scale(4)
	hotter, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(hotter.Tracker.DUEMTTF() < hm) {
		t.Errorf("scaling the plan up did not deepen degradation: x1 %g, x4 %g",
			hm, hotter.Tracker.DUEMTTF())
	}

	// The faults only modulate the error model; timing must not move.
	if hot.Cycles != nominal.Cycles {
		t.Errorf("fault plan changed timing: %d vs %d cycles", hot.Cycles, nominal.Cycles)
	}
}

// TestFaultPlanStuckAccounting: a stuck-notch plan forces whole-offset
// outcomes, which the scheme classifier books as probability-1 failure
// mass. Under Baseline a forced offset is silent corruption, so the
// SDC MTTF must collapse relative to nominal; under SECDED the default
// -1 offset is corrected and adds nothing.
func TestFaultPlanStuckAccounting(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	plan := &faults.Plan{Injectors: []faults.Injector{
		{Kind: faults.KindStuck, Period: 64},
	}}

	base := smallConfig(energy.Racetrack, shiftctrl.Baseline)
	nominal, err := Run(w, base)
	if err != nil {
		t.Fatal(err)
	}
	base.FaultPlan = plan
	reg := telemetry.NewRegistry()
	base.Metrics = reg
	stuck, err := Run(w, base)
	if err != nil {
		t.Fatal(err)
	}
	// Every forced outcome books exactly 1.0 of certain failure mass, so
	// the delta over nominal equals the forced-event count.
	forced := reg.Counter(telemetry.MetricFaultsForced, "").Value()
	if forced == 0 {
		t.Fatal("stuck plan with period 64 forced no outcomes")
	}
	diff := stuck.Tracker.ExpectedSDC() - nominal.Tracker.ExpectedSDC()
	if math.Abs(diff-forced) > 1e-6*forced {
		t.Errorf("stuck plan under Baseline: expected-SDC delta %g, want %g (one per forced outcome)",
			diff, forced)
	}

	sec := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	secNominal, err := Run(w, sec)
	if err != nil {
		t.Fatal(err)
	}
	sec.FaultPlan = plan
	secStuck, err := Run(w, sec)
	if err != nil {
		t.Fatal(err)
	}
	// ClassifyOffset(-1) under SECDED is OffsetOK: the forced outcomes add
	// no failure mass, so the expected-failure totals match nominal.
	if secStuck.Tracker.ExpectedDUE() != secNominal.Tracker.ExpectedDUE() {
		t.Errorf("stuck -1 under SECDED changed expected DUE: %g vs %g",
			secStuck.Tracker.ExpectedDUE(), secNominal.Tracker.ExpectedDUE())
	}
}

// TestFaultPlanDeterministic: the same plan over the same workload must
// reproduce bit-identical reliability results.
func TestFaultPlanDeterministic(t *testing.T) {
	w := smallWorkload("vips", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	plan, err := faults.Preset("mixed")
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultPlan = plan
	a, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles ||
		a.Tracker.ExpectedSDC() != b.Tracker.ExpectedSDC() ||
		a.Tracker.ExpectedDUE() != b.Tracker.ExpectedDUE() {
		t.Errorf("fault-injected run not deterministic: %+v vs %+v", a, b)
	}
}

// TestFaultPlanInvalidRejected: RunCtx must refuse a malformed plan
// before simulating anything.
func TestFaultPlanInvalidRejected(t *testing.T) {
	w := smallWorkload("ferret", 64<<10)
	cfg := smallConfig(energy.Racetrack, shiftctrl.SECDED)
	cfg.FaultPlan = &faults.Plan{Injectors: []faults.Injector{{Kind: "nonsense"}}}
	if _, err := Run(w, cfg); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}
