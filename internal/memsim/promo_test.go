package memsim

import (
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/shiftctrl"
)

func TestPromoBufferUnit(t *testing.T) {
	p := newPromoBuffer(2)
	if p.lookup(0x40, false) {
		t.Fatal("cold lookup hit")
	}
	p.insert(0x40, false, 0, 0)
	if !p.lookup(0x40, false) {
		t.Fatal("inserted line missed")
	}
	// Fill and evict LRU.
	p.insert(0x80, true, 0, 1)
	p.lookup(0x80, false) // make 0x40 the LRU
	p.lookup(0x80, false)
	old, dirty := p.insert(0xC0, false, 0, 2)
	_ = old
	if dirty {
		t.Fatal("clean eviction reported dirty")
	}
	if p.lookup(0x40, false) {
		t.Fatal("LRU line survived eviction")
	}
	if !p.lookup(0x80, false) {
		t.Fatal("MRU line evicted")
	}
}

func TestPromoBufferDirtyFlush(t *testing.T) {
	p := newPromoBuffer(1)
	p.insert(0x40, true, 0, 0) // dirty
	old, dirty := p.insert(0x80, false, 0, 1)
	if !dirty || old.addr != 0x40 {
		t.Fatalf("dirty eviction not reported: %+v %v", old, dirty)
	}
	if p.DirtyFlush != 1 {
		t.Errorf("DirtyFlush = %d", p.DirtyFlush)
	}
}

func TestPromoBufferInvalidate(t *testing.T) {
	p := newPromoBuffer(2)
	p.insert(0x40, false, 0, 0)
	p.invalidate(0x40)
	if p.lookup(0x40, false) {
		t.Fatal("invalidated line hit")
	}
	p.invalidate(0x999) // absent: no-op
}

func TestPromoBufferNil(t *testing.T) {
	if newPromoBuffer(0) != nil {
		t.Fatal("zero entries should disable the buffer")
	}
}

func TestPromoBufferReducesShifts(t *testing.T) {
	// With a promotion buffer, hot lines stop paying alignment shifts.
	w := smallWorkload("vips", 64<<10) // skewed reuse
	base := smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	without, err := Run(w, base)
	if err != nil {
		t.Fatal(err)
	}
	withBuf := smallConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	withBuf.PromoEntries = 32
	with, err := Run(w, withBuf)
	if err != nil {
		t.Fatal(err)
	}
	if with.ShiftOps >= without.ShiftOps {
		t.Errorf("promotion buffer did not reduce shifts: %d vs %d",
			with.ShiftOps, without.ShiftOps)
	}
	// And execution time should not get worse.
	if float64(with.Cycles) > float64(without.Cycles)*1.02 {
		t.Errorf("promotion buffer slowed execution: %d vs %d cycles",
			with.Cycles, without.Cycles)
	}
}

func TestPromoBufferIgnoredForSRAM(t *testing.T) {
	w := smallWorkload("vips", 64<<10)
	cfg := smallConfig(energy.SRAM, shiftctrl.Baseline)
	cfg.PromoEntries = 32
	r, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ShiftOps != 0 {
		t.Error("SRAM with promo buffer recorded shifts")
	}
}
