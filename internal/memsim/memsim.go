// Package memsim is the trace-driven multi-core memory-hierarchy simulator
// standing in for the paper's gem5 setup (Table 4): four in-order 2 GHz
// cores with private L1s, one L2 per core pair, and a shared L3 whose
// technology (SRAM / STT-RAM / racetrack) and racetrack protection scheme
// are configurable. It reports execution time, per-level cache statistics,
// shift behaviour, dynamic and leakage energy, and expected SDC/DUE counts
// for MTTF computation.
package memsim

import (
	"context"
	"fmt"

	"racetrack/hifi/internal/cache"
	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/faults"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/timeseries"
	"racetrack/hifi/internal/trace"
)

// Config selects the simulated system.
type Config struct {
	Cores    int
	ClockHz  float64
	Tech     energy.Tech
	Scheme   shiftctrl.Scheme // racetrack protection (ignored for SRAM/STT)
	Ideal    bool             // racetrack with shift latency removed (RM-Ideal)
	Geometry cache.RTMGeometry
	// AccessesPerCore is the trace length driven through each core.
	AccessesPerCore int
	// WarmupAccessesPerCore runs that many leading accesses per core as a
	// cache-warming phase: the hierarchy is exercised normally, then all
	// Result statistics (cache stats, shift counts, energy, reliability
	// exposure, cycles) are reset at the phase boundary so the reported
	// numbers cover only the measured window. Telemetry counters are
	// monotonic and keep accumulating across both phases; the boundary is
	// visible there through the hifi_sim_phase gauge, the warmup-access
	// counter, and the warmup/measure spans. Must be < AccessesPerCore;
	// 0 (the default) disables the phase.
	WarmupAccessesPerCore int
	Seed                  uint64
	// TargetDUE is the safe-distance reliability target (seconds).
	TargetDUE float64
	// Capacity overrides for scaled-down testing; zero means Table 4.
	L1Capacity, L2Capacity, L3Capacity int64
	// Associativity (Table 4 defaults when zero).
	L1Ways, L2Ways, L3Ways int
	// Sources optionally replaces the synthetic generators with recorded
	// access streams (see trace.Replayer), one per core. When set it must
	// have Cores entries.
	Sources []Source
	// EagerHead returns every stripe group's head to offset 0 after each
	// access (off the critical path), instead of leaving it where the
	// access put it (lazy, the default). Eager pays extra movement and
	// error exposure but makes the next access's distance predictable —
	// the head-management trade-off studied by prior racetrack work the
	// paper builds on.
	EagerHead bool
	// PromoEntries configures a shift-aware promotion buffer of that many
	// 64-byte entries in front of the racetrack data array (the STAG-style
	// structure of [43]); 0 disables it. Hits in the buffer skip the
	// alignment shift entirely.
	PromoEntries int
	// Mix optionally assigns a different workload to each core
	// (multiprogrammed mode); when set it must have Cores entries and the
	// workload passed to Run is used only for labeling. Each program gets
	// a disjoint address-space slice so the shared LLC sees true
	// multiprogram contention.
	Mix []trace.Workload
	// FaultPlan optionally runs the racetrack array under an off-nominal
	// device regime (internal/faults): each LLC shift operation is
	// modulated by the plan's injectors before its reliability exposure
	// is accounted. Nil (or an empty plan) is the nominal device and is
	// provably zero-cost: results and fingerprints are byte-identical to
	// a config without the field. The plan is part of the fingerprint,
	// so cached results are keyed by the regime that produced them.
	FaultPlan *faults.Plan
	// Metrics optionally receives named event series from every level of
	// the simulated hierarchy (see docs/observability.md). The registry
	// is safe to snapshot from another goroutine while the run is in
	// flight. Nil disables instrumentation at one branch per event.
	Metrics *telemetry.Registry
	// Tracer optionally receives shift/eviction events on the LLC
	// timeline. Nil disables tracing.
	Tracer *telemetry.Tracer
	// Sampler optionally cuts the Metrics registry's series into
	// windows on the simulated-access clock: every access ticks it
	// once, the setup/warmup/measure phases mark their windows, and
	// phase boundaries force a cut so warmup and measurement never
	// share a window (see docs/observability.md). Nil disables
	// windowed sampling at one branch per access.
	Sampler *timeseries.Sampler
	// Events optionally receives run.phase events at the warmup/measure
	// boundaries and fault-window transitions from the device plane
	// (docs/events.md). Nil disables emission. Like the other
	// observability fields, Events is excluded from the fingerprint.
	Events *events.Bus
}

// Source is any per-core access stream: the synthetic trace.Generator and
// the recorded trace.Replayer both satisfy it.
type Source interface {
	Next() trace.Access
}

// offsetSource relocates a stream into its own address-space slice for
// multiprogrammed runs.
type offsetSource struct {
	inner Source
	base  uint64
}

// Next implements Source.
func (o *offsetSource) Next() trace.Access {
	a := o.inner.Next()
	a.Addr += o.base
	return a
}

// DefaultConfig returns the paper's Table 4 system for the given LLC
// technology and scheme.
func DefaultConfig(t energy.Tech, s shiftctrl.Scheme) Config {
	return Config{
		Cores:           4,
		ClockHz:         2e9,
		Tech:            t,
		Scheme:          s,
		Geometry:        cache.DefaultRTM(),
		AccessesPerCore: 200_000,
		Seed:            1,
		TargetDUE:       10 * mttf.SecondsPerYear,
	}
}

func (c *Config) fillDefaults() {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.ClockHz == 0 {
		c.ClockHz = 2e9
	}
	if c.L1Capacity == 0 {
		c.L1Capacity = energy.L1().CapacityB / 2 // data side of the split L1
	}
	if c.L2Capacity == 0 {
		c.L2Capacity = energy.L2().CapacityB
	}
	if c.L3Capacity == 0 {
		c.L3Capacity = energy.L3(c.Tech).CapacityB
	}
	if c.L1Ways == 0 {
		c.L1Ways = 2
	}
	if c.L2Ways == 0 {
		c.L2Ways = 4
	}
	if c.L3Ways == 0 {
		c.L3Ways = 16
	}
	if c.Geometry.StripesPerGroup == 0 {
		c.Geometry = cache.DefaultRTM()
	}
	if c.TargetDUE == 0 {
		c.TargetDUE = 10 * mttf.SecondsPerYear
	}
	if c.AccessesPerCore == 0 {
		c.AccessesPerCore = 200_000
	}
}

// Result reports one simulation run.
type Result struct {
	Workload string
	Config   Config

	Cycles  uint64
	Seconds float64

	L1 cache.Stats // aggregated over cores
	L2 cache.Stats // aggregated over L2s
	L3 cache.Stats

	ShiftOps         uint64
	ShiftSteps       uint64
	ShiftCycles      uint64
	AvgShiftDistance float64

	Energy  energy.Account
	Tracker mttf.Tracker
}

// IPCProxy returns accesses per cycle as a crude throughput proxy.
func (r Result) IPCProxy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	total := float64(r.L1.Hits + r.L1.Misses)
	return total / float64(r.Cycles)
}

// Run simulates one workload on the configured system.
func Run(w trace.Workload, cfg Config) (Result, error) {
	return RunCtx(context.Background(), w, cfg)
}

// RunCtx is Run with hierarchical span instrumentation: when ctx carries a
// telemetry.SpanCollector, the run is recorded as a "memsim:<workload>"
// span with "setup", "warmup" (if configured), and "measure" children.
// With no collector in ctx, the span calls reduce to a few context
// lookups per run — they are nowhere near the per-access hot path.
func RunCtx(ctx context.Context, w trace.Workload, cfg Config) (Result, error) {
	cfg.fillDefaults()
	if cfg.Cores < 1 {
		return Result{}, fmt.Errorf("memsim: need at least one core")
	}
	if w := cfg.WarmupAccessesPerCore; w != 0 && (w < 0 || w >= cfg.AccessesPerCore) {
		return Result{}, fmt.Errorf("memsim: warmup accesses (%d) must be in [0, accesses per core = %d)",
			w, cfg.AccessesPerCore)
	}
	if err := cfg.FaultPlan.Validate(); err != nil {
		return Result{}, fmt.Errorf("memsim: %w", err)
	}
	ctx, sp := telemetry.StartSpan(ctx, "memsim:"+w.Name,
		telemetry.A("tech", fmt.Sprint(cfg.Tech)),
		telemetry.A("scheme", fmt.Sprint(cfg.Scheme)))
	defer sp.End()
	sctx, setup := telemetry.StartSpan(ctx, "setup")
	s := newSystem(sctx, w, cfg)
	setup.End()
	s.run(ctx)
	return s.result(), nil
}

// system holds the live simulation state.
type system struct {
	cfg    Config
	w      trace.Workload
	gens   []Source
	cycles []uint64 // per-core current cycle
	left   []int    // accesses remaining per core

	l1 []*cache.Cache
	l2 []*cache.Cache
	l3 *cache.Cache

	rtm     *cache.RTMArray
	promo   *promoBuffer
	planner *shiftctrl.Planner
	adapter *shiftctrl.Adapter
	timing  shiftctrl.Timing
	em      errmodel.Model
	faults  *faults.Device
	shiftE  energy.ShiftCosts

	lastShiftCycle uint64 // LLC-timeline cycle of the previous L3 shift
	shiftCycles    uint64
	// warmupCycles is the per-run timeline position at the warmup/measure
	// boundary; Result cycle counts are relative to it.
	warmupCycles uint64
	// l3FreeAt serializes each LLC bank: the earliest cycle the next
	// access to that bank may start. Occupancy equals the access latency,
	// so the LLC's peak intensity is banks * clock / occupancy.
	l3FreeAt []uint64
	// memFreeAt models DRAM channel bandwidth: one 64B line per 10
	// cycles at 2 GHz matches the Table 4 dual-channel 12.8 GB/s.
	memFreeAt uint64

	acct    energy.Account
	tracker mttf.Tracker

	costsL1, costsL2, costsL3, costsMem energy.CacheCosts

	tel     simTelemetry
	tracer  *telemetry.Tracer
	sampler *timeseries.Sampler
}

// simTelemetry caches the metric handles the simulator updates on its
// hot path, resolved once at construction so per-event cost is an
// atomic add. The zero value (all handles nil) is the disabled state:
// every update is then a single branch.
type simTelemetry struct {
	shiftCycles *telemetry.Counter
	opSteps     *telemetry.Histogram
	opLatency   *telemetry.Histogram
	checks      *telemetry.Counter
	expCorr     *telemetry.Counter
	expSDC      *telemetry.Counter
	expDUE      *telemetry.Counter

	promoHits    *telemetry.Counter
	promoMisses  *telemetry.Counter
	promoFlushes *telemetry.Counter

	dramFills      *telemetry.Counter
	dramWritebacks *telemetry.Counter

	accessesDone  *telemetry.Gauge
	accessesTotal *telemetry.Gauge
	phase         *telemetry.Gauge
	warmupDone    *telemetry.Counter

	faultActive *telemetry.Counter
	faultForced *telemetry.Counter
}

func newSimTelemetry(reg *telemetry.Registry) simTelemetry {
	if reg == nil {
		return simTelemetry{}
	}
	return simTelemetry{
		shiftCycles: reg.Counter(telemetry.MetricShiftCycles, "cycles spent in LLC shift operations"),
		opSteps: reg.Histogram(telemetry.MetricShiftOpInterval,
			"steps per planned shift operation", telemetry.ShiftDistanceBuckets()),
		opLatency: reg.Histogram(telemetry.MetricShiftOpLatency,
			"latency per shift operation in cycles", telemetry.LatencyCycleBuckets()),
		checks:  reg.Counter(telemetry.MetricPECCChecks, "p-ECC position verifies performed"),
		expCorr: reg.Counter(telemetry.MetricExpectedCorrections, "expected p-ECC corrections (analytic)"),
		expSDC:  reg.Counter(telemetry.MetricExpectedSDC, "expected silent data corruptions (analytic)"),
		expDUE:  reg.Counter(telemetry.MetricExpectedDUE, "expected detected-unrecoverable errors (analytic)"),

		promoHits:    reg.Counter(telemetry.MetricPromoHits, "promotion-buffer hits"),
		promoMisses:  reg.Counter(telemetry.MetricPromoMisses, "promotion-buffer misses"),
		promoFlushes: reg.Counter(telemetry.MetricPromoFlushes, "promotion-buffer dirty flush round-trips"),

		dramFills:      reg.Counter(telemetry.MetricDRAMFills, "lines filled from DRAM"),
		dramWritebacks: reg.Counter(telemetry.MetricDRAMWritebacks, "dirty lines written back to DRAM"),

		accessesDone:  reg.Gauge(telemetry.MetricSimAccessesDone, "core accesses simulated so far"),
		accessesTotal: reg.Gauge(telemetry.MetricSimAccessesTotal, "core accesses this run will simulate"),
		phase:         reg.Gauge(telemetry.MetricSimPhase, "0 during cache warmup, 1 while measuring"),
		warmupDone:    reg.Counter(telemetry.MetricSimWarmupAccesses, "core accesses consumed by warmup phases"),

		faultActive: reg.Counter(telemetry.MetricFaultsActiveOps, "shift operations run under an active fault modulation"),
		faultForced: reg.Counter(telemetry.MetricFaultsForced, "shift outcomes forced by a stuck-domain fault"),
	}
}

func newSystem(ctx context.Context, w trace.Workload, cfg Config) *system {
	s := &system{cfg: cfg, w: w}
	s.gens = make([]Source, cfg.Cores)
	s.cycles = make([]uint64, cfg.Cores)
	s.left = make([]int, cfg.Cores)
	s.l1 = make([]*cache.Cache, cfg.Cores)
	for i := range s.gens {
		switch {
		case cfg.Sources != nil:
			s.gens[i] = cfg.Sources[i]
		case cfg.Mix != nil:
			// Multiprogrammed: each core runs its own program in a
			// disjoint address-space slice.
			s.gens[i] = &offsetSource{
				inner: trace.NewGenerator(cfg.Mix[i], 0, cfg.Seed+uint64(i)),
				base:  uint64(i) << 36, // 64 GB apart
			}
		default:
			s.gens[i] = trace.NewGenerator(w, i, cfg.Seed)
		}
		s.l1[i] = cache.New(cfg.L1Capacity, cfg.L1Ways, trace.LineBytes)
	}
	nl2 := (cfg.Cores + 1) / 2
	s.l2 = make([]*cache.Cache, nl2)
	for i := range s.l2 {
		s.l2[i] = cache.New(cfg.L2Capacity, cfg.L2Ways, trace.LineBytes)
	}
	s.l3 = cache.New(cfg.L3Capacity, cfg.L3Ways, trace.LineBytes)
	s.l3FreeAt = make([]uint64, l3Banks)

	s.costsL1 = energy.L1()
	s.costsL2 = energy.L2()
	s.costsL3 = energy.L3(cfg.Tech)
	s.costsMem = energy.DRAM()

	if cfg.Tech == energy.Racetrack {
		s.rtm = cache.NewRTMArray(cfg.Geometry, cfg.L3Capacity)
		s.timing = shiftctrl.DefaultTiming()
		s.em = errmodel.Model{}
		// The plan was validated by RunCtx; New on a valid plan cannot
		// fail, and a nil plan yields a nil (free) device.
		s.faults, _ = faults.New(cfg.FaultPlan)
		s.faults.SetEvents(cfg.Events, "memsim:"+w.Name)
		maxDist := cfg.Geometry.SegLen - 1
		if maxDist < 1 {
			maxDist = 1
		}
		// The planner/adapter construction precomputes safe-distance and
		// sequence tables from the error model — the run's calibration
		// cost, attributed to its own span.
		_, cal := telemetry.StartSpan(ctx, "errmodel-calibration")
		s.planner = shiftctrl.NewPlanner(s.em, s.timing, maxDist, maxDist)
		s.adapter = shiftctrl.NewAdapter(s.planner, cfg.ClockHz, cfg.TargetDUE,
			cfg.Geometry.StripesPerGroup)
		cal.End()
		s.shiftE = energy.DefaultShift()
		s.promo = newPromoBuffer(cfg.PromoEntries)
	}
	s.tel = newSimTelemetry(cfg.Metrics)
	s.tracer = cfg.Tracer
	s.sampler = cfg.Sampler
	s.sampler.Mark("memsim:" + w.Name + ":setup")
	if cfg.Metrics != nil {
		for _, c := range s.l1 {
			c.Instrument(cfg.Metrics, "l1")
		}
		for _, c := range s.l2 {
			c.Instrument(cfg.Metrics, "l2")
		}
		s.l3.Instrument(cfg.Metrics, "l3")
		if s.rtm != nil {
			s.rtm.Instrument(cfg.Metrics)
			s.adapter.Instrument(cfg.Metrics)
		}
		s.tel.accessesTotal.Set(float64(cfg.AccessesPerCore * cfg.Cores))
	}
	return s
}

// run drives all cores to completion in global time order, as a warmup
// phase (optional) followed by the measured phase. The boundary resets
// every Result statistic, so warmup traffic only pre-fills the hierarchy.
func (s *system) run(ctx context.Context) {
	warm := s.cfg.WarmupAccessesPerCore
	if warm > 0 {
		s.tel.phase.Set(0)
		s.sampler.Mark("memsim:" + s.w.Name + ":warmup")
		s.cfg.Events.Emit(events.Event{
			Type: events.RunPhase, Name: "memsim:" + s.w.Name + "/warmup",
			N: int64(warm * s.cfg.Cores),
		})
		_, sp := telemetry.StartSpan(ctx, "warmup",
			telemetry.AInt("accesses", int64(warm*s.cfg.Cores)))
		s.setBudget(warm)
		s.drive()
		sp.End()
		s.tel.warmupDone.Add(float64(warm * s.cfg.Cores))
		s.resetMeasurement()
		// Close the warmup window so measured traffic never shares one.
		s.sampler.Cut()
	}
	s.tel.phase.Set(1)
	s.sampler.Mark("memsim:" + s.w.Name + ":measure")
	s.cfg.Events.Emit(events.Event{
		Type: events.RunPhase, Name: "memsim:" + s.w.Name + "/measure",
		N: int64((s.cfg.AccessesPerCore - warm) * s.cfg.Cores),
	})
	_, sp := telemetry.StartSpan(ctx, "measure",
		telemetry.AInt("accesses", int64((s.cfg.AccessesPerCore-warm)*s.cfg.Cores)))
	s.setBudget(s.cfg.AccessesPerCore - warm)
	s.drive()
	sp.End()
	s.sampler.Cut()
}

// setBudget gives every core n more accesses to execute.
func (s *system) setBudget(n int) {
	for i := range s.left {
		s.left[i] = n
	}
}

// drive executes accesses in global time order until every core's budget
// is spent.
func (s *system) drive() {
	for {
		core := -1
		var min uint64 = ^uint64(0)
		for i := range s.cycles {
			if s.left[i] > 0 && s.cycles[i] < min {
				min = s.cycles[i]
				core = i
			}
		}
		if core < 0 {
			break
		}
		s.step(core)
	}
}

// resetMeasurement zeroes every statistic that feeds Result at the
// warmup/measure boundary. Head positions, promotion-buffer contents,
// adapter history, and the monotonic telemetry counters deliberately
// survive: the warmed state is the point of the phase.
func (s *system) resetMeasurement() {
	s.warmupCycles = s.maxCycles()
	for _, c := range s.l1 {
		c.Stats = cache.Stats{}
	}
	for _, c := range s.l2 {
		c.Stats = cache.Stats{}
	}
	s.l3.Stats = cache.Stats{}
	if s.rtm != nil {
		s.rtm.ShiftOps = 0
		s.rtm.ShiftSteps = 0
		s.rtm.ZeroShiftAccesses = 0
	}
	s.shiftCycles = 0
	s.acct = energy.Account{}
	s.tracker = mttf.Tracker{}
}

// maxCycles returns the leading core's timeline position.
func (s *system) maxCycles() uint64 {
	var max uint64
	for _, c := range s.cycles {
		if c > max {
			max = c
		}
	}
	return max
}

// step executes one access on the chosen core.
func (s *system) step(core int) {
	a := s.gens[core].Next()
	s.left[core]--
	s.cycles[core] += uint64(a.Gap)

	lat := s.accessL1(core, a.Addr, a.Write)
	s.cycles[core] += uint64(lat)
	s.tel.accessesDone.Add(1)
	s.sampler.Tick(1)
}

// accessL1 runs the full hierarchy for one reference and returns latency in
// cycles.
func (s *system) accessL1(core int, addr uint64, write bool) int {
	l1 := s.l1[core]
	res := l1.Access(addr, write)
	lat := s.costsL1.ReadCycles
	s.acct.L1NJ += s.costsL1.ReadNJ
	if res.Hit {
		return lat
	}
	// L1 miss: dirty victim writes back to L2.
	l2 := s.l2[core/2]
	if res.Writeback {
		l2.Access(res.EvictedAddr, true)
		s.acct.L2NJ += s.costsL2.WriteNJ
	}
	lat += s.accessL2(core, l2, addr, write, s.cycles[core]+uint64(lat))
	return lat
}

func (s *system) accessL2(core int, l2 *cache.Cache, addr uint64, write bool, now uint64) int {
	res := l2.Access(addr, write)
	lat := s.costsL2.ReadCycles
	s.acct.L2NJ += s.costsL2.ReadNJ
	if res.Hit {
		return lat
	}
	if res.Writeback {
		s.accessL3(core, res.EvictedAddr, true, now+uint64(lat))
		// Writeback latency is off the critical path; energy and port
		// occupancy are counted in accessL3.
	}
	lat += s.accessL3(core, addr, write, now+uint64(lat))
	return lat
}

// l3Banks is the LLC banking degree: four independently-ported banks.
const l3Banks = 4

// dramOccupancy is the DRAM channel occupancy per 64-byte line: 10 cycles
// at 2 GHz is the Table 4 dual-channel 12.8 GB/s.
const dramOccupancy = 10

// accessL3 performs an L3 access including racetrack shifting and per-bank
// queueing, returning its latency contribution.
func (s *system) accessL3(core int, addr uint64, write bool, now uint64) int {
	res := s.l3.Access(addr, write)
	lat := 0
	// Wait for the addressed bank.
	bank := res.Set % l3Banks
	start := now
	if s.l3FreeAt[bank] > start {
		lat += int(s.l3FreeAt[bank] - start)
		start = s.l3FreeAt[bank]
	}
	service := s.costsL3.ReadCycles
	if write {
		service = s.costsL3.WriteCycles
		s.acct.L3NJ += s.costsL3.WriteNJ
	} else {
		s.acct.L3NJ += s.costsL3.ReadNJ
	}
	if s.rtm != nil {
		if s.promo != nil && s.promo.lookup(addr, write) {
			// Promotion-buffer hit: served at array speed, no shift.
			s.tel.promoHits.Inc()
		} else {
			if s.promo != nil {
				s.tel.promoMisses.Inc()
			}
			service += s.shiftFor(start, res.Set, res.Way)
			if s.promo != nil {
				if old, dirty := s.promo.insert(addr, write, res.Set, res.Way); dirty {
					// Flush the displaced dirty line back into the array:
					// the controller aligns to the old line, writes, and
					// restores the head — a round-trip off the critical
					// path that pays energy and reliability exposure but
					// leaves head state unchanged.
					s.flushShift(old.set, old.way)
				}
			}
		}
	}
	lat += service
	s.l3FreeAt[bank] = start + uint64(service)
	if res.Hit {
		return lat
	}
	if res.Evicted {
		dirty := int64(0)
		if res.Writeback {
			dirty = 1
		}
		s.tracer.Emit(telemetry.EventEviction, start, int64(res.Set), int64(res.Way), dirty)
		if s.promo != nil {
			s.promo.invalidate(res.EvictedAddr)
		}
	}
	if res.Writeback {
		s.acct.DRAMNJ += s.costsMem.WriteNJ
		s.tel.dramWritebacks.Inc()
	}
	// Fill from DRAM: latency plus channel bandwidth occupancy.
	s.acct.DRAMNJ += s.costsMem.ReadNJ
	s.tel.dramFills.Inc()
	memStart := start + uint64(service)
	if s.memFreeAt > memStart {
		lat += int(s.memFreeAt - memStart)
		memStart = s.memFreeAt
	}
	s.memFreeAt = memStart + dramOccupancy
	lat += s.costsMem.ReadCycles
	return lat
}

// shiftFor plans and accounts the shift needed to align the accessed line;
// start is the access's position on the LLC timeline.
func (s *system) shiftFor(start uint64, set, way int) int {
	group, dist, dir := s.rtm.AccessDistance(set, way, s.cfg.L3Ways)
	if dist == 0 {
		s.rtm.MoveHead(group, 0, dir, 0)
		return 0
	}
	var interval uint64
	if start > s.lastShiftCycle {
		interval = start - s.lastShiftCycle
	}
	s.lastShiftCycle = start

	seq := s.planSequence(dist, interval)
	cycles := 0
	owrite := s.cfg.Scheme == shiftctrl.PECCO
	for _, n := range seq {
		oc := s.opCycles(n)
		cycles += oc
		s.tel.opLatency.Observe(float64(oc))
	}
	s.trackSeq(seq)
	s.acct.ShiftNJ += s.shiftE.SeqNJ(seq, owrite)
	s.tracer.Emit(telemetry.EventShift, start, int64(group), int64(dir*dist), int64(len(seq)))
	s.rtm.MoveHead(group, dist, dir, len(seq))
	s.shiftCycles += uint64(cycles)
	s.tel.shiftCycles.Add(float64(cycles))
	if s.cfg.EagerHead {
		s.returnHead(group)
	}
	if s.cfg.Ideal {
		return 0
	}
	return cycles
}

// trackSeq accounts one planned sequence's reliability exposure: the
// MTTF tracker and, when instrumented, the per-operation verify and
// expected-failure series. The SECDED-family schemes run one p-ECC
// check per operation and transparently correct +-1 errors, so the
// expected-correction series integrates the k=1 rate over operations
// (the analytic counterpart of Tape.Corrections).
func (s *system) trackSeq(seq []int) {
	g := float64(s.cfg.Geometry.StripesPerGroup)
	checked := s.cfg.Scheme != shiftctrl.Baseline && s.cfg.Scheme != shiftctrl.STSOnly
	corrects := checked && s.cfg.Scheme != shiftctrl.SED
	for _, n := range seq {
		em := s.em
		if s.faults != nil {
			// One fault-plane step per shift operation: the modulation
			// scales this operation's rates, and a stuck fault lands a
			// concrete position error at probability 1 on one stripe.
			mod := s.faults.Advance()
			if !mod.Identity() {
				em = mod.Apply(em)
				s.tel.faultActive.Inc()
			}
			if mod.ForceOffset != 0 {
				s.tel.faultForced.Inc()
				switch s.cfg.Scheme.ClassifyOffset(mod.ForceOffset) {
				case shiftctrl.OffsetSDC:
					s.tracker.AddShift(1, 0)
					s.tel.expSDC.Add(1)
				case shiftctrl.OffsetDUE:
					s.tracker.AddShift(0, 1)
					s.tel.expDUE.Add(1)
				}
			}
		}
		sdc, due := s.cfg.Scheme.FailureRates(em, n)
		s.tracker.AddShift(sdc*g, due*g)
		s.tel.opSteps.Observe(float64(n))
		s.tel.expSDC.Add(sdc * g)
		s.tel.expDUE.Add(due * g)
		if checked {
			s.tel.checks.Inc()
		}
		if corrects {
			s.tel.expCorr.Add(em.K1Rate(n) * g)
		}
	}
}

// returnHead eagerly shifts the group's head back to offset 0 after an
// access. The return shift happens off the critical path (no latency
// charged to the access) but pays full energy and reliability exposure.
func (s *system) returnHead(group int) {
	h := s.rtm.Head(group)
	if h == 0 {
		return
	}
	seq := s.planSequence(h, 0) // back-to-back: conservative interval
	owrite := s.cfg.Scheme == shiftctrl.PECCO
	s.trackSeq(seq)
	s.acct.ShiftNJ += s.shiftE.SeqNJ(seq, owrite)
	s.rtm.MoveHead(group, h, -1, len(seq))
}

// flushShift accounts the off-path writeback round-trip of a promotion-
// buffer eviction: a shift to the evicted line's offset and back, paying
// energy and reliability exposure without changing the live head state or
// the critical path.
func (s *system) flushShift(set, way int) {
	group, dist, _ := s.rtm.AccessDistance(set, way, s.cfg.L3Ways)
	if dist == 0 {
		return
	}
	owrite := s.cfg.Scheme == shiftctrl.PECCO
	for trip := 0; trip < 2; trip++ { // there and back
		seq := s.planSequence(dist, 0) // back-to-back: conservative plan
		s.trackSeq(seq)
		s.acct.ShiftNJ += s.shiftE.SeqNJ(seq, owrite)
	}
	s.tel.promoFlushes.Inc()
	s.tracer.Emit(telemetry.EventPromoFlush, s.lastShiftCycle, int64(set), int64(way), 0)
	_ = group
}

// planSequence splits a distance into operations per the active scheme.
func (s *system) planSequence(dist int, interval uint64) []int {
	switch s.cfg.Scheme {
	case shiftctrl.PECCO:
		seq := make([]int, dist)
		for i := range seq {
			seq[i] = 1
		}
		return seq
	case shiftctrl.PECCSWorst:
		return shiftctrl.WorstCaseSequence(s.planner, dist,
			s.maxIntensity(), s.cfg.TargetDUE, s.cfg.Geometry.StripesPerGroup)
	case shiftctrl.PECCSAdaptive:
		return s.adapter.SequenceFor(dist, interval)
	default:
		return []int{dist}
	}
}

// maxIntensity is the conservative worst-case access intensity: one access
// per bank occupancy across all banks (the single-bank version is the
// paper's §5.2 83M/s figure for the 128MB LLC).
func (s *system) maxIntensity() float64 {
	return l3Banks * s.cfg.ClockHz / float64(s.costsL3.ReadCycles)
}

// opCycles returns one operation's latency under the active scheme.
func (s *system) opCycles(n int) int {
	if s.cfg.Scheme == shiftctrl.Baseline || s.cfg.Scheme == shiftctrl.STSOnly {
		return s.timing.STS.Cycles(n) // no p-ECC check cycle
	}
	return s.timing.OpCycles(n)
}

// result finalizes statistics over the measured window (everything after
// the warmup boundary; the whole run when no warmup was configured).
func (s *system) result() Result {
	maxCycles := s.maxCycles() - s.warmupCycles
	seconds := float64(maxCycles) / s.cfg.ClockHz
	s.tracker.AddTime(seconds)

	// Leakage over the run.
	s.acct.AddLeakage(s.costsL1.LeakageW*float64(s.cfg.Cores), seconds)
	s.acct.AddLeakage(s.costsL2.LeakageW*float64(len(s.l2)), seconds)
	s.acct.AddLeakage(s.costsL3.LeakageW, seconds)

	r := Result{
		Workload: s.w.Name,
		Config:   s.cfg,
		Cycles:   maxCycles,
		Seconds:  seconds,
		L3:       s.l3.Stats,
		Energy:   s.acct,
		Tracker:  s.tracker,
	}
	for _, c := range s.l1 {
		r.L1.Hits += c.Stats.Hits
		r.L1.Misses += c.Stats.Misses
		r.L1.Writebacks += c.Stats.Writebacks
	}
	for _, c := range s.l2 {
		r.L2.Hits += c.Stats.Hits
		r.L2.Misses += c.Stats.Misses
		r.L2.Writebacks += c.Stats.Writebacks
	}
	if s.rtm != nil {
		r.ShiftOps = s.rtm.ShiftOps
		r.ShiftSteps = s.rtm.ShiftSteps
		r.ShiftCycles = s.shiftCycles
		r.AvgShiftDistance = s.rtm.AvgShiftDistance()
	}
	return r
}
