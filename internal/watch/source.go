package watch

// Event sources: the SSE /events route of a running hifi-* process and
// the NDJSON event log written by -events-out. Both deliver
// events.Event values to a caller-supplied apply function; the caller
// owns locking between apply and Render.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"racetrack/hifi/internal/telemetry/events"
)

// IsURL reports whether the source argument names an SSE endpoint
// rather than an NDJSON file on disk.
func IsURL(source string) bool {
	return strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://")
}

// ReadFileInto folds a complete NDJSON event log into the model —
// the -once path. A truncated final line (killed producer) is
// tolerated by the reader.
func ReadFileInto(m *Model, path string) error {
	hdr, evs, err := events.ReadLogFile(path)
	if err != nil {
		return err
	}
	m.SetTool(hdr.Tool)
	for _, e := range evs {
		m.Apply(e)
	}
	return nil
}

// TailFile reads the NDJSON log at path and keeps applying lines as
// the producer appends them, until ctx ends. onHeader fires once if
// the file opens with a schema header line.
func TailFile(ctx context.Context, path string, onHeader func(events.Header), apply func(events.Event)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	r := bufio.NewReader(f)
	var partial []byte
	first := true
	for {
		chunk, err := r.ReadBytes('\n')
		partial = append(partial, chunk...)
		if err == nil {
			line := bytes.TrimSpace(partial)
			partial = partial[:0]
			if len(line) == 0 {
				continue
			}
			if first {
				first = false
				var hdr events.Header
				if json.Unmarshal(line, &hdr) == nil && hdr.Schema != "" {
					if onHeader != nil {
						onHeader(hdr)
					}
					continue
				}
			}
			var e events.Event
			if jerr := json.Unmarshal(line, &e); jerr != nil {
				return fmt.Errorf("watch: bad event line: %w", jerr)
			}
			apply(e)
			continue
		}
		if err != io.EOF {
			return err
		}
		// At the current end of the file: wait for the producer to
		// append more (a partial line stays buffered until its newline
		// lands).
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// FollowSSE connects to url (a status mux /events route), applies the
// replayed and live events, and reconnects with Last-Event-ID after
// connection loss, until ctx ends. Returns ctx.Err() on cancellation;
// connection errors are retried, not returned.
func FollowSSE(ctx context.Context, url string, apply func(events.Event)) error {
	var lastID uint64
	retry := newReconnectBackoff()
	for {
		before := lastID
		err := streamSSE(ctx, url, &lastID, apply)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if lastID > before {
			// Events flowed on that connection: start the next outage's
			// backoff schedule from the base delay.
			retry.reset()
		}
		_ = err // transient: reconnect with the replay cursor
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retry.next()):
		}
	}
}

// streamSSE runs one SSE connection: frames are `id:`/`event:`/`data:`
// lines terminated by a blank line; `:` lines are comments (the
// handshake). The bus emits single-line JSON, so one data line is one
// event.
func streamSSE(ctx context.Context, url string, lastID *uint64, apply func(events.Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(*lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch: %s: %s", url, resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) > 0 {
				var e events.Event
				if jerr := json.Unmarshal(data, &e); jerr != nil {
					return fmt.Errorf("watch: bad SSE data: %w", jerr)
				}
				if e.Seq > *lastID {
					*lastID = e.Seq
				}
				apply(e)
				data = data[:0]
			}
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		default:
			// id:/event:/comment lines — Seq inside the payload is
			// authoritative for the replay cursor.
		}
	}
	return sc.Err()
}
