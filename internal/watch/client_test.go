package watch

// Client-mode tests against a real serve daemon: following a job's SSE
// stream to its terminal event, and the replay-gap contract — when the
// server's ring has wrapped past what a client ever saw, FollowJob must
// refuse to present a silently-undercounting dashboard and hand over to
// status polling.

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"racetrack/hifi/internal/serve"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
)

// startServe boots a daemon with the given SSE replay ring size and runs
// one quick sweep to completion.
func startServe(t *testing.T, ringCap int) (*httptest.Server, *serve.Job) {
	t.Helper()
	srv := serve.New(serve.Options{
		CacheDir: t.TempDir(),
		Runners:  1,
		Queue:    4,
		RingCap:  ringCap,
		Metrics:  telemetry.NewRegistry(),
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	j, _, err := srv.Submit(serve.Spec{Run: []string{"fig14"}, Scaled: true, Accesses: 300}, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job stuck in %s", j.State())
	}
	if st := j.State(); st != serve.StateDone {
		t.Fatalf("job ended %s (%s)", st, j.Status().Error)
	}
	return ts, j
}

// With an ample ring the whole history replays: FollowJob applies a
// gapless stream and returns nil at the terminal event.
func TestFollowJobCompleteReplay(t *testing.T) {
	ts, j := startServe(t, 0) // events default ring: far larger than one quick job

	m := NewModel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := FollowJob(ctx, ts.URL, j.ID, m.Apply); err != nil {
		t.Fatalf("FollowJob: %v", err)
	}
	if !m.Finished || m.JobState != "done" || m.JobID != j.ID {
		t.Fatalf("model after follow: finished=%v job=%s state=%s", m.Finished, m.JobID, m.JobState)
	}
	if m.Polling {
		t.Fatalf("complete replay flagged as polling fallback")
	}
	if m.LastSeq != j.Bus.Seq() {
		t.Fatalf("applied through seq %d, bus at %d", m.LastSeq, j.Bus.Seq())
	}
}

// With a tiny ring the early events are gone before any client connects:
// the first replayed sequence number jumps past 1, FollowJob reports the
// gap, and the polling fallback still lands the dashboard on the
// authoritative terminal state.
func TestFollowJobReplayGapFallsBackToPolling(t *testing.T) {
	ts, j := startServe(t, 4)

	if seq := j.Bus.Seq(); seq <= 4 {
		t.Fatalf("job emitted only %d events; the ring never wrapped", seq)
	}
	replay := j.Bus.ReplaySince(0)
	if len(replay) == 0 || replay[0].Seq <= 1 {
		t.Fatalf("ring did not wrap: first retained seq %d", replay[0].Seq)
	}

	m := NewModel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := FollowJob(ctx, ts.URL, j.ID, m.Apply)
	if !errors.Is(err, ErrReplayGap) {
		t.Fatalf("FollowJob: %v, want ErrReplayGap", err)
	}

	// The hifi-watch composition: gap → poll the status route.
	if err := PollJob(ctx, ts.URL, j.ID, 50*time.Millisecond, m.ApplyStatus); err != nil {
		t.Fatalf("PollJob: %v", err)
	}
	if !m.Polling {
		t.Fatalf("polling fallback not flagged in the model")
	}
	if !m.Finished || m.JobState != "done" {
		t.Fatalf("polled model: finished=%v state=%s", m.Finished, m.JobState)
	}
	st := j.Status()
	if m.Done != int(st.Engine.Executed) || m.CacheHits != int(st.Engine.CacheHits) {
		t.Fatalf("polled counters %d/%d differ from the ledger %+v", m.Done, m.CacheHits, st.Engine)
	}
}

// The reconnect-with-stale-cursor signal FollowJob keys on, checked
// directly against the ring: a replay for a cursor older than the
// ring's tail starts past cursor+1.
func TestRingWrapLeavesDetectableGap(t *testing.T) {
	small := events.New(4)
	for i := 0; i < 10; i++ {
		small.Emit(events.Event{Type: events.RunPhase, Name: "x"})
	}
	replay := small.ReplaySince(2)
	if len(replay) == 0 {
		t.Fatalf("no replay")
	}
	if first := replay[0].Seq; first <= 3 {
		t.Fatalf("ring of 4 retained seq %d after 10 events; wrap undetectable", first)
	}
}
