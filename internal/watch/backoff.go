package watch

// Reconnect pacing shared by the SSE followers and the poll fallback.
// A fixed 1s retry hammers a server that is down for minutes and — when
// many dashboards watch the same daemon — reconnects them all in
// lockstep. The backoff here is exponential with a cap, and jittered
// deterministically (a hash of the attempt number, not a global RNG):
// retry schedules are reproducible in tests and logs, yet two clients
// that started at different attempts still spread out.

import "time"

// backoff computes successive reconnect delays: base·2^(attempt-1),
// capped, with a deterministic ±25% jitter. The zero value is unusable;
// build one with newReconnectBackoff.
type backoff struct {
	base    time.Duration
	cap     time.Duration
	attempt uint64
}

// newReconnectBackoff is the client-side default: 500ms, 1s, 2s, …
// capped at 15s.
func newReconnectBackoff() *backoff {
	return &backoff{base: 500 * time.Millisecond, cap: 15 * time.Second}
}

// next returns the delay before the upcoming retry and advances the
// schedule.
func (b *backoff) next() time.Duration {
	b.attempt++
	shift := b.attempt - 1
	if shift > 6 {
		shift = 6 // 2^6·base already exceeds any sane cap
	}
	d := b.base << shift
	if d > b.cap || d <= 0 {
		d = b.cap
	}
	// ±25% deterministic jitter: the same attempt number always jitters
	// the same way, but successive attempts land on different offsets.
	span := int64(d) / 2 // jitter window width (25% each side)
	if span > 0 {
		off := int64(splitmix64(b.attempt) % uint64(span))
		d = d - time.Duration(span)/2 + time.Duration(off)
	}
	if d < b.base/2 {
		d = b.base / 2
	}
	return d
}

// reset restarts the schedule after a successful connection, so the
// next outage begins at the base delay again.
func (b *backoff) reset() { b.attempt = 0 }

// splitmix64 is the SplitMix64 mixing function — a full-avalanche hash
// good enough to decorrelate jitter across attempts without any state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
