package watch

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"racetrack/hifi/internal/telemetry/slo"
)

func TestServerFromEventsURL(t *testing.T) {
	cases := []struct {
		in   string
		base string
		ok   bool
	}{
		{"http://localhost:8777/events", "http://localhost:8777", true},
		{"http://localhost:8777/events/", "http://localhost:8777", true},
		{"https://host/events", "https://host", true},
		{"http://localhost:8777/v1/jobs/j0001/events", "http://localhost:8777/v1/jobs/j0001", true},
		{"http://localhost:6060/debug/events", "http://localhost:6060/debug", true},
		{"events.ndjson", "", false},
		{"http://localhost:8777/metrics", "", false},
		{"/events", "", false},
	}
	for _, c := range cases {
		base, ok := ServerFromEventsURL(c.in)
		if base != c.base || ok != c.ok {
			t.Errorf("ServerFromEventsURL(%q) = %q, %v; want %q, %v", c.in, base, ok, c.base, c.ok)
		}
	}
}

func TestFetchSLOAndPanel(t *testing.T) {
	rep := slo.Report{
		Schema: slo.SchemaV1,
		Objectives: []slo.ObjectiveReport{
			{
				Objective: slo.Objective{Name: "availability", Target: 0.999},
				Windows: []slo.WindowReport{
					{Window: "5m", Ratio: 1, BurnRate: 0},
					{Window: "1h", Ratio: 1, BurnRate: 0},
				},
			},
			{
				Objective: slo.Objective{Name: "job_completion", Target: 0.95},
				Windows: []slo.WindowReport{
					{Window: "5m", Good: 1, Bad: 1, Ratio: 0.5, BurnRate: 10},
					{Window: "1h", Good: 3, Bad: 1, Ratio: 0.75, BurnRate: 5},
				},
			},
		},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/slo" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := rep.WriteJSON(w); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	got, err := FetchSLO(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("FetchSLO: %v", err)
	}
	if len(got.Objectives) != 2 || got.Objectives[1].Windows[0].BurnRate != 10 {
		t.Fatalf("FetchSLO report mismatch: %+v", got)
	}

	m := NewModel()
	if panel := m.sloPanel(); panel != "" {
		t.Fatalf("empty model rendered an SLO panel: %q", panel)
	}
	m.ApplySLO(got)
	frame := m.Render()
	for _, want := range []string{"slo", "availability", "ok", "job_completion", "BURN!", "5m 10.00", "95% target"} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

func TestFetchSLORejectsUnknownSchema(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"schema":"hifi_slo_v9","objectives":[]}`))
	}))
	defer srv.Close()
	if _, err := FetchSLO(context.Background(), srv.URL); err == nil {
		t.Fatal("FetchSLO accepted an unknown schema")
	}
}
