package watch

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"racetrack/hifi/internal/telemetry/events"
)

// feed applies a representative event sequence: a four-job sweep on two
// workers with one cache hit, one retry, an open fault window, and a
// fidelity verdict.
func feed(m *Model) {
	seq := uint64(0)
	emit := func(e events.Event) {
		seq++
		e.Seq = seq
		e.TMS = 1000 + int64(seq)*100
		m.Apply(e)
	}
	emit(events.Event{Type: events.RunStart, Name: "hifi-experiments"})
	emit(events.Event{Type: events.RunPhase, Name: "fig10"})
	for i := 0; i < 4; i++ {
		emit(events.Event{Type: events.JobQueued, Name: "j", N: 4})
	}
	emit(events.Event{Type: events.JobCacheHit, Name: "j0"})
	emit(events.Event{Type: events.JobStarted, Name: "j1", Worker: 0})
	emit(events.Event{Type: events.JobStarted, Name: "j2", Worker: 1})
	emit(events.Event{Type: events.JobRetried, Name: "j1", N: 1, Detail: "flaky"})
	emit(events.Event{Type: events.JobFinished, Name: "j1", Worker: 0, MS: 200, N: 2})
	emit(events.Event{Type: events.JobFinished, Name: "j2", Worker: 1, MS: 400, N: 1})
	emit(events.Event{Type: events.JobStarted, Name: "j3", Worker: 0})
	emit(events.Event{Type: events.FaultOpen, Name: "memsim:ferret", N: 1200, V: 3})
	emit(events.Event{Type: events.FidelityVerdict, Name: "fig7_sdc", Detail: "ok", V: 0.93})
}

func TestModelAggregates(t *testing.T) {
	m := NewModel()
	feed(m)

	if m.Tool != "hifi-experiments" {
		t.Errorf("Tool = %q", m.Tool)
	}
	if m.Phase != "fig10" {
		t.Errorf("Phase = %q", m.Phase)
	}
	if m.Queued != 4 {
		t.Errorf("Queued = %d, want 4", m.Queued)
	}
	if m.Completed() != 3 { // 2 finished + 1 cache hit
		t.Errorf("Completed = %d, want 3", m.Completed())
	}
	if got := m.CacheHitRate(); got < 0.32 || got > 0.34 {
		t.Errorf("CacheHitRate = %v, want ~1/3", got)
	}
	if m.Retries != 1 {
		t.Errorf("Retries = %d", m.Retries)
	}
	if m.InFlight() != 1 { // j3 on w0
		t.Errorf("InFlight = %d, want 1", m.InFlight())
	}
	if len(m.Faults) != 1 {
		t.Errorf("open faults = %d, want 1", len(m.Faults))
	}
	if m.Verdicts["ok"] != 1 {
		t.Errorf("Verdicts = %v", m.Verdicts)
	}
	// ETA: mean 300ms × 1 remaining ÷ 2 workers = 150ms.
	if eta := m.ETA(); eta != 150*time.Millisecond {
		t.Errorf("ETA = %v, want 150ms", eta)
	}
}

func TestFaultCloseClearsWindow(t *testing.T) {
	m := NewModel()
	m.Apply(events.Event{Seq: 1, Type: events.FaultOpen, Name: "s", N: 10, V: 2})
	m.Apply(events.Event{Seq: 2, Type: events.FaultClose, Name: "s", N: 20})
	if len(m.Faults) != 0 {
		t.Errorf("window still open after fault.close: %v", m.Faults)
	}
}

func TestRenderMentionsKeyFacts(t *testing.T) {
	m := NewModel()
	feed(m)
	out := m.Render()
	for _, want := range []string{
		"hifi-experiments", "phase fig10", "3/4", "cache 1",
		"retry 1", "w0:1", "w1:1", "memsim:ferret", "ok=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmptyModel(t *testing.T) {
	if out := NewModel().Render(); out == "" || !strings.Contains(out, "hifi-watch") {
		t.Errorf("empty-model frame unusable: %q", out)
	}
}

// writeLog produces an NDJSON log through the real bus + sink path.
func writeLog(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := events.WriteHeader(f, "hifi-sim"); err != nil {
		t.Fatal(err)
	}
	bus := events.New(0)
	bus.AttachSink(f)
	bus.Emit(events.Event{Type: events.RunStart, Name: "hifi-sim"})
	bus.Emit(events.Event{Type: events.RunPhase, Name: "measure"})
	bus.Emit(events.Event{Type: events.RunFinish, MS: 42})
	if err := bus.SinkErr(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFileInto(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	writeLog(t, path)
	m := NewModel()
	if err := ReadFileInto(m, path); err != nil {
		t.Fatal(err)
	}
	if m.Tool != "hifi-sim" || m.Events != 3 || !m.Finished {
		t.Errorf("tool=%q events=%d finished=%v", m.Tool, m.Events, m.Finished)
	}
}

func TestTailFileSeesAppendedEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	writeLog(t, path)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var mu sync.Mutex
	m := NewModel()
	got := make(chan int, 16)
	go func() {
		_ = TailFile(ctx, path,
			func(h events.Header) { mu.Lock(); m.SetTool(h.Tool); mu.Unlock() },
			func(e events.Event) {
				mu.Lock()
				m.Apply(e)
				got <- m.Events
				mu.Unlock()
			})
	}()

	waitFor := func(n int) {
		for {
			select {
			case v := <-got:
				if v >= n {
					return
				}
			case <-ctx.Done():
				t.Fatalf("timed out waiting for %d events", n)
			}
		}
	}
	waitFor(3)

	// Append a fourth event after the tail reached EOF.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	bus := events.New(0)
	bus.AttachSink(f)
	bus.Emit(events.Event{Type: events.RunPhase, Name: "late"})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(4)

	mu.Lock()
	defer mu.Unlock()
	if m.Tool != "hifi-sim" || m.Phase != "late" {
		t.Errorf("tool=%q phase=%q after tail", m.Tool, m.Phase)
	}
}

func TestFollowSSEAppliesReplayAndLive(t *testing.T) {
	bus := events.New(0)
	bus.Emit(events.Event{Type: events.RunStart, Name: "hifi-trace"})
	bus.Emit(events.Event{Type: events.RunPhase, Name: "fig4"})
	srv := httptest.NewServer(events.Handler(bus))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	var mu sync.Mutex
	m := NewModel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = FollowSSE(ctx, srv.URL, func(e events.Event) {
			mu.Lock()
			m.Apply(e)
			n := m.Events
			mu.Unlock()
			if n == 3 {
				cancel()
			}
		})
	}()
	bus.Emit(events.Event{Type: events.RunFinish, MS: 7})
	<-done
	cancel()

	mu.Lock()
	defer mu.Unlock()
	if m.Events != 3 || m.Tool != "hifi-trace" || !m.Finished {
		t.Errorf("events=%d tool=%q finished=%v", m.Events, m.Tool, m.Finished)
	}
	if m.LastSeq != 3 {
		t.Errorf("LastSeq = %d, want 3", m.LastSeq)
	}
}
