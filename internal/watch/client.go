package watch

// hifi-serve client mode: follow one job's SSE stream, detect replay
// gaps by sequence number, and degrade to polling the job's status
// route when the stream can no longer reconstruct complete state.
//
// A job bus numbers its events 1..N with no holes, and the SSE route
// replays from the ring on reconnect (Last-Event-ID). When the ring has
// wrapped past the client's cursor, the first replayed event jumps the
// cursor by more than one — that is the gap signal. A gapped dashboard
// would silently undercount (jobs, cache hits, faults), so the client
// switches to GET /v1/jobs/{id}, whose counters are authoritative.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"racetrack/hifi/internal/serve"
	"racetrack/hifi/internal/telemetry/events"
)

// ErrReplayGap reports that the server's SSE replay ring dropped events
// between the client's cursor and the oldest retained event; the stream
// can no longer reconstruct complete state and the caller should fall
// back to PollJob.
var ErrReplayGap = errors.New("watch: SSE replay gap (events lost); falling back to status polling")

// pollFailLimit bounds consecutive poll errors before PollJob gives up.
const pollFailLimit = 5

// JobEventsURL builds a job's SSE route on a hifi-serve server.
func JobEventsURL(server, id string) string {
	return strings.TrimRight(server, "/") + "/v1/jobs/" + id + "/events"
}

// JobStatusURL builds a job's pollable status route.
func JobStatusURL(server, id string) string {
	return strings.TrimRight(server, "/") + "/v1/jobs/" + id
}

// FollowJob streams one hifi-serve job's events into apply until the
// job's terminal event arrives (serve.job.finished/failed/canceled is by
// contract the stream's last event), a replay gap is detected, or ctx
// ends. Returns nil after the terminal event, ErrReplayGap on a gap, and
// ctx.Err() on cancellation; transient connection errors reconnect with
// the Last-Event-ID cursor.
func FollowJob(ctx context.Context, server, id string, apply func(events.Event)) error {
	url := JobEventsURL(server, id)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		lastID   uint64 // streamSSE's reconnect cursor
		cursor   uint64 // last seq actually applied
		gap      bool
		terminal bool
	)
	retry := newReconnectBackoff()
	wrapped := func(e events.Event) {
		if gap || terminal {
			return
		}
		// An applied event means the connection works: the next outage
		// starts the backoff schedule from the base delay again.
		retry.reset()
		if e.Seq > cursor+1 {
			// The ring wrapped past us: events between cursor and e.Seq
			// are gone for good.
			gap = true
			cancel()
			return
		}
		cursor = e.Seq
		apply(e)
		switch e.Type {
		case events.ServeJobFinished, events.ServeJobFailed, events.ServeJobCanceled:
			terminal = true
			cancel()
		}
	}
	for {
		err := streamSSE(sctx, url, &lastID, wrapped)
		switch {
		case terminal:
			return nil
		case gap:
			return ErrReplayGap
		case ctx.Err() != nil:
			return ctx.Err()
		}
		_ = err // transient: reconnect with the replay cursor
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retry.next()):
		}
	}
}

// PollJob is the SSE fallback: fetch GET /v1/jobs/{id} every interval,
// hand each status to onStatus, and return once the job is terminal.
// Gives up after pollFailLimit consecutive fetch errors.
func PollJob(ctx context.Context, server, id string, every time.Duration, onStatus func(serve.JobStatus)) error {
	if every <= 0 {
		every = time.Second
	}
	url := JobStatusURL(server, id)
	retry := newReconnectBackoff()
	fails := 0
	for {
		st, err := fetchStatus(ctx, url)
		wait := every
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if fails++; fails >= pollFailLimit {
				return fmt.Errorf("watch: polling %s: %w", url, err)
			}
			// A failing poll backs off like a failing SSE connection:
			// an unreachable server is probed gently, not per-interval.
			wait = retry.next()
		} else {
			fails = 0
			retry.reset()
			onStatus(st)
			if st.State.Terminal() {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

func fetchStatus(ctx context.Context, url string) (serve.JobStatus, error) {
	var st serve.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return st, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return st, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("watch: %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("watch: %s: %w", url, err)
	}
	return st, nil
}

// ApplyStatus folds a polled JobStatus into the model — the degraded
// path after a replay gap. The poll body's engine counters are
// authoritative and overwrite the (gapped) event-derived ones.
func (m *Model) ApplyStatus(st serve.JobStatus) {
	m.Polling = true
	m.setJob(st.ID, string(st.State), st.Error)
	if st.EventsSeq > m.LastSeq {
		m.LastSeq = st.EventsSeq
	}
	if eng := st.Engine; eng != nil {
		m.Queued = int(eng.Jobs)
		m.Done = int(eng.Executed)
		m.CacheHits = int(eng.CacheHits)
		m.Retries = int(eng.Retries)
		m.Timeouts = int(eng.Timeouts)
		m.Failed = int(eng.Failures)
	}
	if st.State.Terminal() {
		m.Finished = true
		m.RunMS = st.WallMS
	}
}
