package watch

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// barWidth is the job progress bar's character budget.
const barWidth = 30

// Render draws one dashboard frame as plain text (no ANSI — the CLI
// owns screen clearing). Sections with nothing to say are omitted, so
// a frame from a short tool (hifi-bench) stays short.
func (m *Model) Render() string {
	var b strings.Builder

	tool := m.Tool
	if tool == "" {
		tool = "?"
	}
	fmt.Fprintf(&b, "hifi-watch · %s", tool)
	if m.Phase != "" {
		fmt.Fprintf(&b, " · phase %s", m.Phase)
	}
	fmt.Fprintf(&b, " · seq %d · %d event(s)", m.LastSeq, m.Events)
	if el := m.Elapsed(); el > 0 {
		fmt.Fprintf(&b, " · %s", round(el))
	}
	if m.Finished {
		fmt.Fprintf(&b, " · finished in %s", round(time.Duration(m.RunMS)*time.Millisecond))
	}
	b.WriteByte('\n')

	if m.JobID != "" {
		fmt.Fprintf(&b, "job   %s %s", m.JobID, m.JobState)
		if m.JobNote != "" {
			fmt.Fprintf(&b, " (%s)", m.JobNote)
		}
		if m.Polling {
			b.WriteString("  [SSE replay gap: polling status]")
		}
		b.WriteByte('\n')
	}

	if m.Queued > 0 {
		done := m.Completed()
		fmt.Fprintf(&b, "jobs  %s %d/%d (%.0f%%)", bar(done, m.Queued), done, m.Queued,
			100*float64(done)/float64(m.Queued))
		if inflight := m.InFlight(); inflight > 0 {
			fmt.Fprintf(&b, "  in-flight %d", inflight)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "      cache %d (%.0f%% hit)  retry %d  timeout %d  panic %d  failed %d\n",
			m.CacheHits, 100*m.CacheHitRate(), m.Retries, m.Timeouts, m.Panics, m.Failed)
		if eta := m.ETA(); eta > 0 {
			mean := time.Duration(float64(m.ExecMSTotal)/float64(m.Done)) * time.Millisecond
			fmt.Fprintf(&b, "      avg job %s  eta ~%s\n", round(mean), round(eta))
		}
	}

	if len(m.WorkerStates) > 0 {
		b.WriteString("workers")
		for _, slot := range m.workerSlots() {
			w := m.WorkerStates[slot]
			fmt.Fprintf(&b, "  w%d:%d", slot, w.Done)
			if w.Busy != "" {
				busy := ""
				if w.BusySinceMS > 0 && m.LastTMS >= w.BusySinceMS {
					busy = " " + round(time.Duration(m.LastTMS-w.BusySinceMS)*time.Millisecond).String()
				}
				fmt.Fprintf(&b, " (%s%s)", w.Busy, busy)
			}
		}
		b.WriteByte('\n')
	}

	if len(m.Faults) > 0 {
		scopes := make([]string, 0, len(m.Faults))
		for s := range m.Faults {
			scopes = append(scopes, s)
		}
		sort.Strings(scopes)
		b.WriteString("faults")
		for _, s := range scopes {
			f := m.Faults[s]
			fmt.Fprintf(&b, "  %s open@op%d x%.2f", f.Scope, f.OpenedAtOp, f.RateFactor)
		}
		b.WriteByte('\n')
	}

	if len(m.Verdicts) > 0 {
		fmt.Fprintf(&b, "fidelity  %s\n", m.verdictLine())
	}

	b.WriteString(m.sloPanel())

	for _, r := range m.Regressions {
		fmt.Fprintf(&b, "REGRESSION  %s %.2fx (%s)\n", r.Name, r.Ratio, r.Detail)
	}

	return b.String()
}

// bar renders a [####....] progress bar.
func bar(done, total int) string {
	fill := 0
	if total > 0 {
		fill = done * barWidth / total
	}
	if fill > barWidth {
		fill = barWidth
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", barWidth-fill) + "]"
}

// round trims durations to a display-friendly precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}
