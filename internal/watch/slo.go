package watch

// SLO panel: hifi-watch polls a hifi-serve daemon's GET /slo route and
// renders the burn-rate report alongside the event-derived dashboard —
// in client mode (-server/-job) and in daemon-watch mode (an /events
// URL on a serve daemon, from which the base URL is derived). A server
// without the route (an older daemon) just means no panel.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"racetrack/hifi/internal/telemetry/slo"
)

// SLOURL builds the SLO route on a hifi-serve server.
func SLOURL(server string) string {
	return strings.TrimRight(server, "/") + "/slo"
}

// ServerFromEventsURL derives a hifi-serve base URL from its daemon
// /events SSE URL ("http://host:8777/events" → "http://host:8777").
// ok is false for any other source (a file path, a per-run /events
// route on a different mux — the panel is then simply absent).
func ServerFromEventsURL(url string) (string, bool) {
	base, found := strings.CutSuffix(strings.TrimRight(url, "/"), "/events")
	if !found || base == "" || !IsURL(base) {
		return "", false
	}
	return base, true
}

// FetchSLO fetches and decodes one GET /slo report.
func FetchSLO(ctx context.Context, server string) (slo.Report, error) {
	var rep slo.Report
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, SLOURL(server), nil)
	if err != nil {
		return rep, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return rep, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("watch: %s: %s", SLOURL(server), resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("watch: %s: %w", SLOURL(server), err)
	}
	if rep.Schema != slo.SchemaV1 {
		return rep, fmt.Errorf("watch: %s: unknown schema %q", SLOURL(server), rep.Schema)
	}
	return rep, nil
}

// PollSLO fetches the report every interval into onReport until ctx
// ends. A server without the route stops the loop silently after the
// first 404 (an older daemon); transient errors keep polling.
func PollSLO(ctx context.Context, server string, every time.Duration, onReport func(slo.Report)) {
	if every <= 0 {
		every = time.Second
	}
	fetch := func() bool {
		rep, err := FetchSLO(ctx, server)
		if err != nil {
			return !strings.Contains(err.Error(), "404")
		}
		onReport(rep)
		return true
	}
	if !fetch() {
		return
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if !fetch() {
				return
			}
		}
	}
}

// ApplySLO folds a fetched report into the model.
func (m *Model) ApplySLO(rep slo.Report) { m.SLO = &rep }

// sloPanel renders the burn-rate panel, one objective per line:
//
//	slo   availability     ok      burn 5m 0.00 · 1h 0.00  (99.9% target)
//	      job_completion   BURN!   burn 5m 3.20 · 1h 0.40  (95.0% target)
//
// An objective is flagged when any window burns at or above 1.0 —
// budget consumed faster than it accrues.
func (m *Model) sloPanel() string {
	if m.SLO == nil || len(m.SLO.Objectives) == 0 {
		return ""
	}
	var b strings.Builder
	for i, o := range m.SLO.Objectives {
		head := "slo  "
		if i > 0 {
			head = "     "
		}
		burning := false
		var wins []string
		for _, w := range o.Windows {
			if w.BurnRate >= 1 {
				burning = true
			}
			wins = append(wins, fmt.Sprintf("%s %.2f", w.Window, w.BurnRate))
		}
		verdict := "ok"
		if burning {
			verdict = "BURN!"
		}
		fmt.Fprintf(&b, "%s %-16s %-5s burn %s  (%.4g%% target)\n",
			head, o.Name, verdict, strings.Join(wins, " · "), o.Target*100)
	}
	return b.String()
}
