// Package watch aggregates the structured event stream
// (internal/telemetry/events, schema hifi_events_v1) into a live
// dashboard model and renders it as text. cmd/hifi-watch drives it from
// either a running process's SSE /events route or an NDJSON event log
// on disk; the model itself is source-agnostic — feed it events in
// sequence order and ask for a frame.
package watch

import (
	"fmt"
	"sort"
	"time"

	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/slo"
)

// WorkerState tracks one engine pool slot.
type WorkerState struct {
	Done int    // jobs finished on this slot
	Busy string // label of the in-flight job, "" when idle
	// BusysinceMS is the TMS of the job.started event for the in-flight
	// job, 0 when idle.
	BusySinceMS int64
}

// FaultWindow is one currently-open fault-plan window.
type FaultWindow struct {
	Scope      string  // event Name, e.g. "memsim:ferret"
	OpenedAtOp int64   // shift-operation index on the device clock
	RateFactor float64 // composed modulation at opening
}

// Regression is one bench.regression event.
type Regression struct {
	Name   string
	Detail string
	Ratio  float64
}

// Model folds events into the aggregate state the dashboard renders.
// Not safe for concurrent use; callers guard Apply/Render with their
// own lock (the SSE path applies from one goroutine and renders from
// another).
type Model struct {
	Tool  string // run.start Name, or the NDJSON header's tool
	Phase string // most recent run.phase Name

	LastSeq  uint64 // highest sequence number applied
	Events   int    // events applied
	FirstTMS int64  // TMS of the first event (run clock origin)
	LastTMS  int64  // TMS of the latest event
	Finished bool   // run.finish seen
	RunMS    int64  // run.finish wall time

	// Serve-job attachment (a hifi-serve per-job stream or poll).
	JobID    string // serve.job.* Name
	JobState string // queued/running/done/failed/canceled
	JobNote  string // failure text or cancel reason from the terminal event
	Polling  bool   // fell back to status polling after an SSE replay gap

	// Engine job lifecycle. Queued counts job.queued events and is the
	// sweep's job total: every job is announced exactly once, up front,
	// even across multiple engine batches.
	Queued       int
	Started      int
	Done         int // job.finished
	CacheHits    int
	Retries      int
	Timeouts     int
	Panics       int
	Failed       int
	ExecMSTotal  int64 // summed job.finished MS, for the ETA's mean
	WorkerStates map[int]*WorkerState

	// Fault windows keyed by scope; only open windows are held.
	Faults map[string]FaultWindow

	// Fidelity verdict counts keyed by Detail ("ok", "warn", "fail"...).
	Verdicts map[string]int

	Regressions []Regression

	// SLO is the daemon's latest burn-rate report, polled from GET /slo
	// in the -server client mode and when watching a daemon /events URL;
	// nil when the source has no SLO plane (a file, a per-run stream).
	SLO *slo.Report
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{
		WorkerStates: make(map[int]*WorkerState),
		Faults:       make(map[string]FaultWindow),
		Verdicts:     make(map[string]int),
	}
}

// SetTool records the stream's producing tool when the source knows it
// out of band (the NDJSON header); run.start overrides it.
func (m *Model) SetTool(tool string) {
	if tool != "" {
		m.Tool = tool
	}
}

// Apply folds one event into the model.
func (m *Model) Apply(e events.Event) {
	m.Events++
	if e.Seq > m.LastSeq {
		m.LastSeq = e.Seq
	}
	if m.FirstTMS == 0 || (e.TMS != 0 && e.TMS < m.FirstTMS) {
		m.FirstTMS = e.TMS
	}
	if e.TMS > m.LastTMS {
		m.LastTMS = e.TMS
	}

	switch e.Type {
	case events.RunStart:
		m.SetTool(e.Name)
	case events.RunPhase:
		m.Phase = e.Name
	case events.RunFinish:
		m.Finished = true
		m.RunMS = e.MS

	case events.ServeJobAccepted:
		m.setJob(e.Name, "queued", "")
	case events.ServeJobStarted:
		m.setJob(e.Name, "running", "")
	case events.ServeJobFinished:
		m.setJob(e.Name, "done", "")
		m.Finished = true
		m.RunMS = e.MS
	case events.ServeJobFailed:
		m.setJob(e.Name, "failed", e.Detail)
		m.Finished = true
		m.RunMS = e.MS
	case events.ServeJobCanceled:
		m.setJob(e.Name, "canceled", e.Detail)
		m.Finished = true
		m.RunMS = e.MS

	case events.JobQueued:
		m.Queued++
	case events.JobStarted:
		m.Started++
		w := m.worker(e.Worker)
		w.Busy = e.Name
		w.BusySinceMS = e.TMS
	case events.JobFinished:
		m.Done++
		m.ExecMSTotal += e.MS
		w := m.worker(e.Worker)
		w.Done++
		w.Busy = ""
		w.BusySinceMS = 0
	case events.JobCacheHit:
		m.CacheHits++
	case events.JobRetried:
		m.Retries++
	case events.JobTimeout:
		m.Timeouts++
	case events.JobPanic:
		m.Panics++
	case events.JobFailed:
		m.Failed++

	case events.FaultOpen:
		m.Faults[e.Name] = FaultWindow{Scope: e.Name, OpenedAtOp: e.N, RateFactor: e.V}
	case events.FaultClose:
		delete(m.Faults, e.Name)

	case events.FidelityVerdict:
		m.Verdicts[e.Detail]++

	case events.BenchRegression:
		m.Regressions = append(m.Regressions, Regression{Name: e.Name, Detail: e.Detail, Ratio: e.V})
	}
}

// setJob records the serve-job lifecycle position.
func (m *Model) setJob(id, state, note string) {
	if id != "" {
		m.JobID = id
	}
	m.JobState = state
	m.JobNote = note
}

func (m *Model) worker(slot int) *WorkerState {
	w := m.WorkerStates[slot]
	if w == nil {
		w = &WorkerState{}
		m.WorkerStates[slot] = w
	}
	return w
}

// Completed is the number of jobs that reached a terminal state.
func (m *Model) Completed() int { return m.Done + m.CacheHits + m.Failed }

// CacheHitRate is cache hits over completed jobs, 0 before any
// completion.
func (m *Model) CacheHitRate() float64 {
	if c := m.Completed(); c > 0 {
		return float64(m.CacheHits) / float64(c)
	}
	return 0
}

// InFlight is the number of workers currently executing a job.
func (m *Model) InFlight() int {
	n := 0
	for _, w := range m.WorkerStates {
		if w.Busy != "" {
			n++
		}
	}
	return n
}

// Elapsed is the stream's own wall-clock span, first event to latest.
func (m *Model) Elapsed() time.Duration {
	if m.FirstTMS == 0 || m.LastTMS < m.FirstTMS {
		return 0
	}
	return time.Duration(m.LastTMS-m.FirstTMS) * time.Millisecond
}

// ETA estimates time to drain the remaining jobs: mean executed-job
// wall time × remaining ÷ worker count. Zero when unknowable (no
// finished job yet, no total yet, or the run is already done).
func (m *Model) ETA() time.Duration {
	remaining := m.Queued - m.Completed()
	if m.Finished || m.Done == 0 || m.Queued == 0 || remaining <= 0 {
		return 0
	}
	workers := len(m.WorkerStates)
	if workers == 0 {
		workers = 1
	}
	mean := float64(m.ExecMSTotal) / float64(m.Done)
	return time.Duration(mean*float64(remaining)/float64(workers)) * time.Millisecond
}

// workerSlots returns the known pool slots in order.
func (m *Model) workerSlots() []int {
	slots := make([]int, 0, len(m.WorkerStates))
	for s := range m.WorkerStates {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	return slots
}

// verdictLine renders the fidelity counts in a stable order.
func (m *Model) verdictLine() string {
	keys := make([]string, 0, len(m.Verdicts))
	for k := range m.Verdicts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += "  "
		}
		s += fmt.Sprintf("%s=%d", k, m.Verdicts[k])
	}
	return s
}
