package watch

import (
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := newReconnectBackoff()
	prevCeil := time.Duration(0)
	for attempt := 1; attempt <= 12; attempt++ {
		d := b.next()
		// Nominal delay for this attempt before jitter.
		shift := attempt - 1
		if shift > 6 {
			shift = 6
		}
		nominal := b.base << shift
		if nominal > b.cap {
			nominal = b.cap
		}
		lo, hi := nominal*3/4, nominal*5/4
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside jitter window [%v, %v]", attempt, d, lo, hi)
		}
		if hi > prevCeil {
			prevCeil = hi
		}
	}
	// Deep into the schedule the delay is pinned near the cap, never
	// runaway.
	if d := b.next(); d > b.cap*5/4 {
		t.Fatalf("capped delay %v exceeds %v", d, b.cap*5/4)
	}
}

func TestBackoffResetRestartsSchedule(t *testing.T) {
	b := newReconnectBackoff()
	for i := 0; i < 8; i++ {
		b.next()
	}
	b.reset()
	if d := b.next(); d > b.base*5/4 {
		t.Fatalf("first delay after reset is %v, want near base %v", d, b.base)
	}
}

// The jitter is a hash of the attempt number: two clients (or two runs
// of a test) walking the same schedule see the same delays.
func TestBackoffDeterministic(t *testing.T) {
	a, b := newReconnectBackoff(), newReconnectBackoff()
	for i := 0; i < 10; i++ {
		if da, db := a.next(), b.next(); da != db {
			t.Fatalf("attempt %d: %v != %v", i+1, da, db)
		}
	}
}
