# Verification tiers and convenience targets. Plain `make` runs tier-1.
#
#   make tier1           build + unit tests (the seed gate)
#   make ci              tier-1 plus vet and the race detector
#   make bench           full benchmark sweep
#   make bench-snapshot  one full-size instrumented run -> BENCH_<rev>.json
#   make report          render the evaluation report (scaled)

GO ?= go
REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: all tier1 ci vet race test build bench bench-snapshot report fmt clean

all: tier1

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

ci: build vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' .

# bench-snapshot runs one full-size workload with telemetry attached and
# archives the metrics snapshot for the performance trajectory. The .prom
# twin is written alongside and removed; the JSON is the artifact.
bench-snapshot:
	$(GO) run ./cmd/hifi-sim -workload ferret -accesses 200000 \
		-metrics-out BENCH_$(REV) -progress 0 -q
	@rm -f BENCH_$(REV).prom
	@echo wrote BENCH_$(REV).json

report:
	$(GO) run ./cmd/hifi-report -scaled -o report.md

fmt:
	gofmt -w .

clean:
	rm -f report.md BENCH_*.json BENCH_*.prom
