# Verification tiers and convenience targets. Plain `make` runs tier-1.
#
#   make tier1           build + unit tests (the seed gate)
#   make ci              tier-1 plus vet and the race detector
#   make bench           full benchmark sweep (go test -bench)
#   make bench-snapshot  pinned hifi-bench suite -> BENCH_<utc-date>.json
#   make bench-smoke     quick suite + self-compare (CI regression gate dry run)
#   make perf-smoke      profile capture + self-time export + trajectory check
#   make engine-smoke    parallel-sweep determinism + cache-reuse check
#   make watch-smoke     event stream end-to-end: -events-out log + hifi-watch -once
#   make serve-smoke     hifi-serve daemon end-to-end: submit, stream, drain
#   make serve-crash-smoke  kill -9 mid-job, restart -resume, recovery checks
#   make chaos           fault-injection tests + seeded campaign + off==nominal
#   make fidelity        scaled sweep scored against the paper anchors
#   make report          render the evaluation report (scaled)

GO ?= go
DATE := $(shell date -u +%F)

.PHONY: all tier1 ci vet race test build bench bench-snapshot bench-smoke perf-smoke engine-smoke watch-smoke serve-smoke serve-crash-smoke chaos fidelity report fmt clean

all: tier1

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

ci: build vet race

# vet runs go vet plus the repo's own checkers: errvet (no Close/Flush
# error silently dropped; no select on ctx.Done() returning nil without
# consulting ctx.Err()/context.Cause) and metriclint (every hifi_*
# series literal must match a constant in internal/telemetry/names.go,
# and every constant there must be used — names.go stays the single
# naming authority; see internal/tools/metriclint).
vet:
	$(GO) vet ./...
	$(GO) run ./internal/tools/errvet .
	$(GO) run ./internal/tools/metriclint .

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' .

# bench-snapshot runs the pinned micro+macro suite (hifi-bench) and
# archives the ns/op + domain-rate snapshot for the performance
# trajectory. Snapshots are date-stamped (BENCH_<utc-date>.json) so a
# sorted directory listing IS the trajectory; commit the file to extend
# it. Compare two with:
#   go run ./cmd/hifi-bench -compare BENCH_old.json BENCH_new.json
# and render the whole history with:
#   go run ./cmd/hifi-bench -trajectory BENCH_*.json
# HIFI_GIT_SHA backfills the manifest's git_sha: `go run` binaries carry
# no VCS build stamp, so without it committed snapshots say "unknown".
bench-snapshot:
	HIFI_GIT_SHA=$$(git rev-parse HEAD 2>/dev/null) $(GO) run ./cmd/hifi-bench -out BENCH_$(DATE).json

# bench-smoke is the CI shape: quick suite, then a self-compare to prove
# the gate machinery works (always passes; the regression gate proper runs
# against an archived baseline).
bench-smoke:
	$(GO) run ./cmd/hifi-bench -quick -out BENCH_smoke.json
	$(GO) run ./cmd/hifi-bench -compare BENCH_smoke.json BENCH_smoke.json

# perf-smoke is the local version of CI's perf job: a sweep with pprof
# capture and self-time export on, existence checks on every artifact,
# and a trajectory over the committed baseline(s) plus a fresh quick
# snapshot (docs/perf.md).
perf-smoke:
	rm -rf /tmp/hifi-perf && mkdir -p /tmp/hifi-perf
	$(GO) run ./cmd/hifi-experiments -run fig14 -scaled -accesses 1000 -q \
		-profile cpu,heap -profile-out /tmp/hifi-perf/run \
		-perf-out /tmp/hifi-perf/perf.json \
		-manifest-out /tmp/hifi-perf/run.manifest.json >/dev/null
	test -s /tmp/hifi-perf/run.cpu.pprof
	test -s /tmp/hifi-perf/run.heap.pprof
	grep -q hifi_perf_v1 /tmp/hifi-perf/perf.json
	grep -q cpu.pprof /tmp/hifi-perf/run.manifest.json
	$(GO) run ./cmd/hifi-bench -quick -q -out /tmp/hifi-perf/BENCH_now.json
	$(GO) run ./cmd/hifi-bench -trajectory -svg-out /tmp/hifi-perf/trend.svg \
		BENCH_*.json /tmp/hifi-perf/BENCH_now.json
	test -s /tmp/hifi-perf/trend.svg

# engine-smoke is the local version of CI's engine job: tables must be
# byte-identical at any -jobs, and a repeated cached sweep must execute
# nothing (see docs/engine.md).
engine-smoke:
	$(GO) run ./cmd/hifi-experiments -run fig10,fig14 -scaled -accesses 1000 -q -jobs 1 > /tmp/hifi-serial.txt
	$(GO) run ./cmd/hifi-experiments -run fig10,fig14 -scaled -accesses 1000 -q -jobs 8 > /tmp/hifi-parallel.txt
	diff -u /tmp/hifi-serial.txt /tmp/hifi-parallel.txt
	rm -rf /tmp/hifi-engine-cache
	$(GO) run ./cmd/hifi-experiments -run fig14 -scaled -accesses 1000 -jobs 8 -cache-dir /tmp/hifi-engine-cache >/dev/null
	$(GO) run ./cmd/hifi-experiments -run fig14 -scaled -accesses 1000 -jobs 8 -cache-dir /tmp/hifi-engine-cache 2>&1 >/dev/null \
		| grep -E 'engine: [0-9]+ jobs, 0 executed, [1-9][0-9]* cache hits'

# watch-smoke is the local version of CI's events job (docs/events.md):
# a scaled sweep writes the NDJSON event log, the run/job lifecycle
# counts are asserted (one run.start/run.finish; every queued job
# reaches a terminal event), and hifi-watch renders a non-empty
# one-shot dashboard from the log.
watch-smoke:
	rm -rf /tmp/hifi-watch && mkdir -p /tmp/hifi-watch
	$(GO) run ./cmd/hifi-experiments -run fig14 -scaled -accesses 1000 -q -jobs 4 \
		-events-out /tmp/hifi-watch/events.ndjson >/dev/null
	head -1 /tmp/hifi-watch/events.ndjson | grep -q hifi_events_v1
	test "$$(grep -c '"type":"run.start"' /tmp/hifi-watch/events.ndjson)" = 1
	test "$$(grep -c '"type":"run.finish"' /tmp/hifi-watch/events.ndjson)" = 1
	q=$$(grep -c '"type":"job.queued"' /tmp/hifi-watch/events.ndjson); \
	d=$$(grep -cE '"type":"job\.(finished|cache_hit|failed)"' /tmp/hifi-watch/events.ndjson); \
	test "$$q" -ge 1 && test "$$q" = "$$d"
	$(GO) run ./cmd/hifi-watch -once /tmp/hifi-watch/events.ndjson > /tmp/hifi-watch/frame.txt
	grep -q 'hifi-experiments' /tmp/hifi-watch/frame.txt
	grep -q 'jobs' /tmp/hifi-watch/frame.txt

# serve-smoke is the local version of CI's serve job (docs/serve.md):
# boot a real hifi-serve daemon, submit a sweep over HTTP, follow it
# with hifi-watch's client mode, diff the served tables byte-for-byte
# against a direct hifi-experiments run, prove an identical
# resubmission executes zero new simulations (shared cache + metrics),
# and drain cleanly on SIGTERM. All the choreography lives in
# scripts/serve_smoke.sh.
serve-smoke:
	bash scripts/serve_smoke.sh

# serve-crash-smoke is the kill -9 story (docs/serve.md, "Restart
# recovery & the job index"): boot a daemon, SIGKILL it mid-job, restart
# with -resume against the same cache dir, and assert the completed
# job's status and byte-identical tables survive (executed=0) while the
# interrupted job re-queues under its original id. The choreography
# lives in scripts/serve_crash_smoke.sh.
serve-crash-smoke:
	bash scripts/serve_crash_smoke.sh

# chaos is the local version of CI's chaos job (docs/faults.md): the
# storage-chaos tests under the race detector, a tiny seeded
# device-plane campaign, and the contract that -faults off is
# byte-identical to a plan-free run.
chaos:
	$(GO) test -race ./internal/faults/... ./internal/engine/...
	$(GO) run ./cmd/hifi-chaos -scaled -accesses 500 -intensities 0,2 \
		-schemes baseline,adaptive > /tmp/hifi-chaos-curves.txt
	grep -q 'Chaos: DUE MTTF vs fault intensity' /tmp/hifi-chaos-curves.txt
	$(GO) run ./cmd/hifi-experiments -run fig14 -scaled -accesses 1000 -q > /tmp/hifi-plan-free.txt
	$(GO) run ./cmd/hifi-experiments -run fig14 -scaled -accesses 1000 -q -faults off > /tmp/hifi-faults-off.txt
	diff -u /tmp/hifi-plan-free.txt /tmp/hifi-faults-off.txt

# fidelity is the local version of CI's fidelity job: a scaled sweep
# scored against the paper-anchor set (internal/fidelity); any failing
# anchor fails the target. Produces fidelity.json and report.html.
fidelity:
	$(GO) run ./cmd/hifi-report -scaled -q -fidelity-out fidelity.json \
		-fidelity-gate -html report.html

report:
	$(GO) run ./cmd/hifi-report -scaled -o report.md

fmt:
	gofmt -w .

# clean spares the date-stamped BENCH_*.json snapshots: those are
# committed history (the bench trajectory), not build products.
clean:
	rm -f report.md report.html fidelity.json BENCH_smoke.json \
		*.manifest.json *.spans.json *.folded *.pprof
