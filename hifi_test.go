package hifi

import (
	"bytes"
	"testing"

	"racetrack/hifi/internal/mttf"
)

func newMem(t *testing.T, cfg Config) *Memory {
	t.Helper()
	m, err := New(16<<10, cfg) // 16KB: 4 groups at defaults
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(100, Config{}); err == nil {
		t.Error("non-group-multiple capacity accepted")
	}
	if _, err := New(16<<10, Config{SegLen: 3, DomainsPerStripe: 64}); err == nil {
		t.Error("SegLen not dividing DomainsPerStripe accepted")
	}
	if _, err := New(16<<10, Config{SegLen: 2, DomainsPerStripe: 64, Scheme: SchemeSECDED}); err == nil {
		t.Error("SegLen 2 with SECDED accepted")
	}
}

func TestCapacityAndGeometry(t *testing.T) {
	m := newMem(t, Config{})
	if m.Capacity() != 16<<10 {
		t.Errorf("capacity = %d", m.Capacity())
	}
	if m.LineBytes() != 64 {
		t.Errorf("line bytes = %d", m.LineBytes())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := newMem(t, Config{ErrorScale: 1e-9})
	line := bytes.Repeat([]byte{0xAB}, 64)
	if err := m.WriteLine(0, line); err != nil {
		t.Fatal(err)
	}
	got, valid, err := m.ReadLine(0)
	if err != nil || !valid {
		t.Fatalf("read: %v valid=%v", err, valid)
	}
	if !bytes.Equal(got, line) {
		t.Error("data mismatch")
	}
}

func TestRoundTripAcrossOffsets(t *testing.T) {
	m := newMem(t, Config{ErrorScale: 1e-9})
	// Lines 0..63 of group 0 live at every segment offset.
	for i := int64(0); i < 64; i++ {
		line := bytes.Repeat([]byte{byte(i)}, 64)
		if err := m.WriteLine(i*64, line); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(63); i >= 0; i-- {
		got, valid, err := m.ReadLine(i * 64)
		if err != nil || !valid {
			t.Fatalf("line %d: %v valid=%v", i, err, valid)
		}
		if got[0] != byte(i) {
			t.Fatalf("line %d returned %#x", i, got[0])
		}
	}
	if !m.Aligned() {
		t.Error("memory should be aligned after clean traffic")
	}
}

func TestAddressValidation(t *testing.T) {
	m := newMem(t, Config{})
	if _, _, err := m.ReadLine(-64); err == nil {
		t.Error("negative address accepted")
	}
	if _, _, err := m.ReadLine(m.Capacity()); err == nil {
		t.Error("out-of-range address accepted")
	}
	if _, _, err := m.ReadLine(13); err == nil {
		t.Error("unaligned address accepted")
	}
	if err := m.WriteLine(0, []byte{1, 2}); err == nil {
		t.Error("short line accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := newMem(t, Config{ErrorScale: 1e-9})
	line := make([]byte, 64)
	m.WriteLine(7*64, line) // offset 7: requires shifting
	m.ReadLine(0)
	s := m.Stats()
	if s.Writes != 1 || s.Reads != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.ShiftOps == 0 || s.ShiftCycles == 0 {
		t.Error("no shifts recorded for cross-offset traffic")
	}
}

func TestInjectedErrorsAreHandled(t *testing.T) {
	// At large error scale, corrections must appear while reads keep
	// returning the right data (unless silent/DUE events struck).
	m := newMem(t, Config{ErrorScale: 500, Seed: 3})
	line := bytes.Repeat([]byte{0x5A}, 64)
	m.WriteLine(0, line)
	for i := 0; i < 2000; i++ {
		m.ReadLine(int64(i%64) * 64)
	}
	s := m.Stats()
	if s.Corrections == 0 {
		t.Error("no corrections at 500x error rate")
	}
	got, valid, _ := m.ReadLine(0)
	if valid && s.SilentErrors == 0 && !bytes.Equal(got, line) {
		t.Error("aligned valid read returned wrong data")
	}
}

func TestBaselineSuffersSilently(t *testing.T) {
	// The unprotected baseline at inflated error rates must eventually
	// serve wrong data without noticing: the paper's motivating failure.
	m, err := New(4<<10, Config{Scheme: SchemeBaseline, ErrorScale: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000 && m.Stats().SilentErrors == 0; i++ {
		m.ReadLine(int64(i%64) * 64)
	}
	s := m.Stats()
	if s.SilentErrors == 0 {
		t.Error("baseline never misaligned silently at 2000x rates")
	}
	if s.Corrections != 0 || s.DUEs != 0 {
		t.Errorf("baseline cannot correct or detect: %+v", s)
	}
}

func TestSchemesDiffer(t *testing.T) {
	// p-ECC-O must issue more shift ops than SECDED for the same traffic.
	run := func(s Scheme) Stats {
		m, err := New(4<<10, Config{Scheme: s, ErrorScale: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			m.ReadLine(int64(i*7%64) * 64)
		}
		return m.Stats()
	}
	secded := run(SchemeSECDED)
	pecco := run(SchemePECCO)
	if pecco.ShiftOps <= secded.ShiftOps {
		t.Errorf("p-ECC-O ops %d should exceed SECDED %d", pecco.ShiftOps, secded.ShiftOps)
	}
}

func TestReliabilityOrdering(t *testing.T) {
	const intensity = 50e6
	sdcB, dueB := Reliability(SchemeBaseline, 8, intensity)
	sdcS, dueS := Reliability(SchemeSECDED, 8, intensity)
	if sdcS <= sdcB {
		t.Errorf("SECDED SDC MTTF (%g) should exceed baseline (%g)", sdcS, sdcB)
	}
	if dueB != mttf.FromRate(0, 1) && dueB < 1e30 {
		t.Errorf("baseline DUE MTTF should be infinite, got %g", dueB)
	}
	// Paper headline: SECDED SDC MTTF exceeds 1000 years.
	if YearsMTTF(sdcS) < 1000 {
		t.Errorf("SECDED SDC MTTF = %g years, want > 1000", YearsMTTF(sdcS))
	}
	if dueS <= 0 {
		t.Error("SECDED DUE MTTF must be finite and positive")
	}
}

func TestZeroConfigGetsRecommendedScheme(t *testing.T) {
	m := newMem(t, Config{})
	if m.cfg.Scheme != SchemePECCSAdaptive {
		t.Errorf("zero config scheme = %v", m.cfg.Scheme)
	}
}

func TestDUEInvalidatesLines(t *testing.T) {
	// Force frequent DUEs with an enormous k2 rate and check invalidation
	// bookkeeping: lines disappear rather than serving stale data.
	m, err := New(4<<10, Config{Scheme: SchemeSECDED, ErrorScale: 3e13, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte{1}, 64)
	m.WriteLine(0, line)
	for i := 0; i < 3000 && m.Stats().DUEs == 0; i++ {
		m.ReadLine(int64(i%64) * 64)
	}
	if m.Stats().DUEs == 0 {
		t.Skip("no DUE sampled; rates capped")
	}
	if m.Stats().LinesInvalidated == 0 {
		t.Error("DUE recovery did not invalidate lines")
	}
}
