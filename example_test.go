package hifi_test

import (
	"bytes"
	"fmt"

	hifi "racetrack/hifi"
)

// The quickest possible session: build a protected memory, store a line,
// read it back.
func ExampleNew() {
	mem, err := hifi.New(64<<10, hifi.Config{})
	if err != nil {
		panic(err)
	}
	line := bytes.Repeat([]byte{0xAB}, mem.LineBytes())
	if err := mem.WriteLine(0, line); err != nil {
		panic(err)
	}
	data, valid, err := mem.ReadLine(0)
	fmt.Println(err == nil, valid, bytes.Equal(data, line))
	// Output: true true true
}

// Reliability computes the paper's MTTF estimates analytically: the
// recommended architecture meets the 1000-year SDC target with years of
// DUE MTTF at a realistic LLC shift intensity.
func ExampleReliability() {
	sdc, due := hifi.Reliability(hifi.SchemePECCSAdaptive, 8, 50e6)
	fmt.Println(hifi.YearsMTTF(sdc) > 1000)
	fmt.Println(hifi.YearsMTTF(due) > 10)
	// Output:
	// true
	// true
}

// Schemes are ordered from unprotected to the full architecture; the
// String form names each as in the paper.
func ExampleScheme_String() {
	fmt.Println(hifi.SchemeBaseline)
	fmt.Println(hifi.SchemeSECDED)
	fmt.Println(hifi.SchemePECCSAdaptive)
	// Output:
	// baseline
	// secded-pecc
	// secded-pecc-s-adaptive
}

// Stats accumulate as the memory works; cross-offset traffic shifts the
// stripe groups.
func ExampleMemory_Stats() {
	mem, _ := hifi.New(64<<10, hifi.Config{ErrorScale: 1e-12})
	line := make([]byte, mem.LineBytes())
	mem.WriteLine(0, line)    // offset 0
	mem.WriteLine(7*64, line) // offset 7: a 7-step shift
	s := mem.Stats()
	fmt.Println(s.Writes, s.ShiftOps > 0)
	// Output: 2 true
}
