package hifi

import (
	"testing"
)

func TestEnergyEstimateZeroWhenIdle(t *testing.T) {
	mem, err := New(4<<10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := mem.Energy()
	if e.TotalNJ != 0 {
		t.Errorf("idle memory reports %v nJ", e.TotalNJ)
	}
}

func TestEnergyEstimateAccumulates(t *testing.T) {
	mem, err := New(4<<10, Config{ErrorScale: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 64)
	mem.WriteLine(0, line)
	afterWrite := mem.Energy()
	if afterWrite.AccessNJ <= 0 {
		t.Error("write consumed no access energy")
	}
	// A cross-offset read adds shift energy.
	mem.ReadLine(7 * 64)
	afterRead := mem.Energy()
	if afterRead.TotalNJ <= afterWrite.TotalNJ {
		t.Error("read did not add energy")
	}
	if afterRead.ShiftNJ <= 0 {
		t.Error("cross-offset access consumed no shift energy")
	}
	if afterRead.DetectNJ <= 0 {
		t.Error("p-ECC check energy missing")
	}
	sum := afterRead.AccessNJ + afterRead.ShiftNJ + afterRead.DetectNJ
	if sum != afterRead.TotalNJ {
		t.Errorf("components %v don't sum to total %v", sum, afterRead.TotalNJ)
	}
}

func TestEnergyShiftScalesWithDistance(t *testing.T) {
	run := func(offset int64) float64 {
		mem, err := New(4<<10, Config{ErrorScale: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		mem.ReadLine(offset * 64)
		return mem.Energy().ShiftNJ
	}
	near := run(1) // 1-step shift
	far := run(7)  // 7-step shift
	if far <= near {
		t.Errorf("7-step shift energy (%v) should exceed 1-step (%v)", far, near)
	}
}
