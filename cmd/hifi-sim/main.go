// Command hifi-sim runs one workload on the simulated memory hierarchy and
// reports timing, cache, shift, energy, and reliability statistics.
//
// Usage:
//
//	hifi-sim -workload canneal -tech racetrack -scheme adaptive
//	hifi-sim -workload streamcluster -tech sram
//	hifi-sim -workload ferret -tech racetrack -scheme pecco -accesses 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/memsim"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "ferret", "PARSEC-like workload name")
		tech     = flag.String("tech", "racetrack", "LLC technology: sram | stt | racetrack")
		scheme   = flag.String("scheme", "adaptive", "protection: baseline | sed | secded | pecco | worst | adaptive")
		accesses = flag.Int("accesses", 200_000, "accesses per core")
		seed     = flag.Uint64("seed", 1, "trace seed")
		ideal    = flag.Bool("ideal", false, "remove shift latency (RM-Ideal)")
	)
	flag.Parse()

	w, err := trace.ByName(*workload)
	if err != nil {
		fail("%v (workloads: canneal dedup facesim ferret fluidanimate freqmine blackscholes bodytrack streamcluster swaptions vips x264)", err)
	}
	t, err := parseTech(*tech)
	if err != nil {
		fail("%v", err)
	}
	s, err := parseScheme(*scheme)
	if err != nil {
		fail("%v", err)
	}

	cfg := memsim.DefaultConfig(t, s)
	cfg.AccessesPerCore = *accesses
	cfg.Seed = *seed
	cfg.Ideal = *ideal

	r, err := memsim.Run(w, cfg)
	if err != nil {
		fail("simulation: %v", err)
	}

	fmt.Printf("workload      %s (%s)\n", r.Workload, class(w))
	fmt.Printf("system        %s LLC, scheme %s, ideal=%v\n", t, s, *ideal)
	fmt.Printf("time          %d cycles = %.3f ms @2GHz\n", r.Cycles, r.Seconds*1e3)
	fmt.Printf("L1            %.2f%% miss (%d accesses)\n", 100*r.L1.MissRate(), r.L1.Hits+r.L1.Misses)
	fmt.Printf("L2            %.2f%% miss (%d accesses)\n", 100*r.L2.MissRate(), r.L2.Hits+r.L2.Misses)
	fmt.Printf("L3            %.2f%% miss (%d accesses)\n", 100*r.L3.MissRate(), r.L3.Hits+r.L3.Misses)
	if t == energy.Racetrack {
		fmt.Printf("shifts        %d ops, %d steps (avg %.2f), %d cycles\n",
			r.ShiftOps, r.ShiftSteps, r.AvgShiftDistance, r.ShiftCycles)
		fmt.Printf("reliability   SDC MTTF %s, DUE MTTF %s\n",
			human(r.Tracker.SDCMTTF()), human(r.Tracker.DUEMTTF()))
	}
	fmt.Printf("energy        dynamic %.3f uJ (LLC %.3f uJ), leakage %.3f mJ, total %.3f mJ\n",
		r.Energy.DynamicNJ()/1e3, r.Energy.LLCDynamicNJ()/1e3,
		r.Energy.LeakageJ*1e3, r.Energy.TotalJ()*1e3)
}

func parseTech(s string) (energy.Tech, error) {
	switch s {
	case "sram":
		return energy.SRAM, nil
	case "stt", "stt-ram", "sttram":
		return energy.STTRAM, nil
	case "racetrack", "rm", "dwm":
		return energy.Racetrack, nil
	default:
		return 0, fmt.Errorf("unknown technology %q", s)
	}
}

func parseScheme(s string) (shiftctrl.Scheme, error) {
	switch s {
	case "baseline", "none":
		return shiftctrl.Baseline, nil
	case "sts":
		return shiftctrl.STSOnly, nil
	case "sed":
		return shiftctrl.SED, nil
	case "secded", "pecc":
		return shiftctrl.SECDED, nil
	case "pecco", "pecc-o":
		return shiftctrl.PECCO, nil
	case "worst", "pecc-s-worst":
		return shiftctrl.PECCSWorst, nil
	case "adaptive", "pecc-s-adaptive":
		return shiftctrl.PECCSAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", s)
	}
}

func class(w trace.Workload) string {
	if w.CapacitySensitive {
		return "capacity-sensitive"
	}
	return "capacity-insensitive"
}

func human(seconds float64) string {
	switch {
	case seconds >= mttf.SecondsPerYear:
		return fmt.Sprintf("%.3g years", mttf.Years(seconds))
	case seconds >= 86400:
		return fmt.Sprintf("%.3g days", seconds/86400)
	case seconds >= 1:
		return fmt.Sprintf("%.3g s", seconds)
	default:
		return fmt.Sprintf("%.3g us", seconds*1e6)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hifi-sim: "+format+"\n", args...)
	os.Exit(1)
}
