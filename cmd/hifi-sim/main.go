// Command hifi-sim runs one workload on the simulated memory hierarchy and
// reports timing, cache, shift, energy, and reliability statistics.
//
// Usage:
//
//	hifi-sim -workload canneal -tech racetrack -scheme adaptive
//	hifi-sim -workload streamcluster -tech sram
//	hifi-sim -workload ferret -tech racetrack -scheme pecco -accesses 500000
//
// Observability (see docs/observability.md):
//
//	hifi-sim -workload ferret -metrics-out run      # run.json + run.prom + run.manifest.json
//	hifi-sim -workload ferret -spans-out run        # run.spans.json + run.folded
//	hifi-sim -workload ferret -trace-out run.trace.json
//	hifi-sim -workload ferret -pprof localhost:6060 -progress 2s
//
// The run executes as one job of the experiment engine (docs/engine.md),
// so -cache-dir makes an identical re-run instant:
//
//	hifi-sim -workload ferret -cache-dir .hificache   # first run simulates
//	hifi-sim -workload ferret -cache-dir .hificache   # second run is a cache hit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"racetrack/hifi/internal/cache"
	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/memsim"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/trace"
)

// simView is the JSON-stable projection of a memsim.Result carrying
// every statistic this command prints, so a run served from the engine
// cache reports exactly what the original execution did.
type simView struct {
	Workload    string         `json:"workload"`
	Cycles      uint64         `json:"cycles"`
	Seconds     float64        `json:"seconds"`
	L1          cache.Stats    `json:"l1"`
	L2          cache.Stats    `json:"l2"`
	L3          cache.Stats    `json:"l3"`
	ShiftOps    uint64         `json:"shift_ops"`
	ShiftSteps  uint64         `json:"shift_steps"`
	ShiftCycles uint64         `json:"shift_cycles"`
	AvgShiftDst float64        `json:"avg_shift_distance"`
	SDCMTTF     engine.Float   `json:"sdc_mttf_s"` // +Inf when no failure mass accrued
	DUEMTTF     engine.Float   `json:"due_mttf_s"`
	Energy      energy.Account `json:"energy"`
}

func toView(r memsim.Result) simView {
	return simView{
		Workload:    r.Workload,
		Cycles:      r.Cycles,
		Seconds:     r.Seconds,
		L1:          r.L1,
		L2:          r.L2,
		L3:          r.L3,
		ShiftOps:    r.ShiftOps,
		ShiftSteps:  r.ShiftSteps,
		ShiftCycles: r.ShiftCycles,
		AvgShiftDst: r.AvgShiftDistance,
		SDCMTTF:     engine.Float(r.Tracker.SDCMTTF()),
		DUEMTTF:     engine.Float(r.Tracker.DUEMTTF()),
		Energy:      r.Energy,
	}
}

func main() {
	var (
		workload = flag.String("workload", "ferret", "PARSEC-like workload name")
		tech     = flag.String("tech", "racetrack", "LLC technology: sram | stt | racetrack")
		scheme   = flag.String("scheme", "adaptive", "protection: baseline | sed | secded | pecco | worst | adaptive")
		accesses = flag.Int("accesses", 200_000, "accesses per core")
		warmup   = flag.Int("warmup", 0, "warmup accesses per core excluded from the reported statistics")
		seed     = flag.Uint64("seed", 1, "trace seed")
		ideal    = flag.Bool("ideal", false, "remove shift latency (RM-Ideal)")

		traceOut = flag.String("trace-out", "", "write shift-event trace (JSON) to this file")
		traceCap = flag.Int("trace-cap", 1<<16, "events retained in the trace ring buffer")
		progress = flag.Duration("progress", 5*time.Second, "progress-line interval (0 disables)")
	)
	obs := cliutil.NewObs("hifi-sim")
	engFlags := cliutil.AddEngineFlags(flag.CommandLine)
	faultFlags := cliutil.NewFaultFlags()
	flag.Parse()
	obs.EnableMetrics() // the progress line reads the run gauges
	ctx := obs.Start()
	eng, err := engFlags.Build(obs)
	if err != nil {
		log.Fatalf("hifi-sim: %v", err)
	}

	w, err := trace.ByName(*workload)
	if err != nil {
		log.Fatalf("hifi-sim: %v (workloads: canneal dedup facesim ferret fluidanimate freqmine blackscholes bodytrack streamcluster swaptions vips x264)", err)
	}
	t, err := parseTech(*tech)
	if err != nil {
		log.Fatalf("hifi-sim: %v", err)
	}
	s, err := parseScheme(*scheme)
	if err != nil {
		log.Fatalf("hifi-sim: %v", err)
	}
	plan, err := faultFlags.Plan()
	if err != nil {
		log.Fatalf("hifi-sim: %v", err)
	}

	reg := obs.Reg
	cfg := memsim.DefaultConfig(t, s)
	cfg.AccessesPerCore = *accesses
	cfg.WarmupAccessesPerCore = *warmup
	cfg.Seed = *seed
	cfg.Ideal = *ideal
	cfg.Metrics = reg
	cfg.Sampler = obs.TS
	cfg.Events = obs.Events
	cfg.FaultPlan = plan
	if *traceOut != "" {
		cfg.Tracer = telemetry.NewTracer(*traceCap)
	}

	stopProgress := watchProgress(reg, *progress)
	start := time.Now()
	// The run is one engine job: with -cache-dir an identical invocation
	// is served from the content-addressed cache without simulating.
	job := engine.Job{
		Key:   cfg.Fingerprint(w),
		Label: fmt.Sprintf("%v/%v:%s", t, s, w.Name),
		Fn: func(jctx context.Context) (any, error) {
			r, err := memsim.RunCtx(jctx, w, cfg)
			if err != nil {
				return nil, err
			}
			return toView(r), nil
		},
	}
	rep, err := eng.Run(ctx, []engine.Job{job})
	stopProgress()
	if err != nil {
		log.Fatalf("hifi-sim: simulation: %v", err)
	}
	r, err := engine.Decode[simView](rep.Payloads[0])
	if err != nil {
		log.Fatalf("hifi-sim: %v", err)
	}
	if rep.CacheHits > 0 {
		log.Infof("served from result cache")
		if *traceOut != "" {
			log.Errorf("hifi-sim: -trace-out with a warm cache records no events; clear -cache-dir to re-simulate")
		}
	}
	log.Debugf("simulated %d accesses in %v", cfg.AccessesPerCore*cfg.Cores,
		time.Since(start).Round(time.Millisecond))

	fmt.Printf("workload      %s (%s)\n", r.Workload, class(w))
	fmt.Printf("system        %s LLC, scheme %s, ideal=%v\n", t, s, *ideal)
	if plan != nil {
		fmt.Printf("faults        %d injector(s), plan seed %d\n", len(plan.Injectors), plan.Seed)
	}
	fmt.Printf("time          %d cycles = %.3f ms @2GHz\n", r.Cycles, r.Seconds*1e3)
	fmt.Printf("L1            %.2f%% miss (%d accesses)\n", 100*r.L1.MissRate(), r.L1.Hits+r.L1.Misses)
	fmt.Printf("L2            %.2f%% miss (%d accesses)\n", 100*r.L2.MissRate(), r.L2.Hits+r.L2.Misses)
	fmt.Printf("L3            %.2f%% miss (%d accesses)\n", 100*r.L3.MissRate(), r.L3.Hits+r.L3.Misses)
	if t == energy.Racetrack {
		fmt.Printf("shifts        %d ops, %d steps (avg %.2f), %d cycles\n",
			r.ShiftOps, r.ShiftSteps, r.AvgShiftDst, r.ShiftCycles)
		fmt.Printf("reliability   SDC MTTF %s, DUE MTTF %s\n",
			human(float64(r.SDCMTTF)), human(float64(r.DUEMTTF)))
	}
	fmt.Printf("energy        dynamic %.3f uJ (LLC %.3f uJ), leakage %.3f mJ, total %.3f mJ\n",
		r.Energy.DynamicNJ()/1e3, r.Energy.LLCDynamicNJ()/1e3,
		r.Energy.LeakageJ*1e3, r.Energy.TotalJ()*1e3)

	if *traceOut != "" {
		if err := writeTrace(cfg.Tracer, *traceOut); err != nil {
			log.Fatalf("hifi-sim: trace: %v", err)
		}
		obs.AddOutput(*traceOut)
		log.Infof("wrote %d trace events to %s (%d dropped)",
			cfg.Tracer.Len(), *traceOut, cfg.Tracer.Dropped())
	}
	engFlags.Finish(eng)
	if err := obs.Finish(); err != nil {
		log.Fatalf("hifi-sim: %v", err)
	}
}

// watchProgress emits a periodic progress line (events/sec, ETA) from
// the run-progress gauges, which the simulator updates while in flight.
// The returned function stops the watcher.
func watchProgress(reg *telemetry.Registry, every time.Duration) func() {
	if every <= 0 {
		return func() {}
	}
	done := reg.Gauge(telemetry.MetricSimAccessesDone, "")
	total := reg.Gauge(telemetry.MetricSimAccessesTotal, "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		last, lastAt := 0.0, time.Now()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				d, t := done.Value(), total.Value()
				rate := (d - last) / now.Sub(lastAt).Seconds()
				last, lastAt = d, now
				eta := "?"
				if rate > 0 && t > d {
					eta = time.Duration(float64(time.Second) * (t - d) / rate).Round(time.Second).String()
				}
				pct := 0.0
				if t > 0 {
					pct = 100 * d / t
				}
				log.Infof("progress %.0f/%.0f accesses (%.1f%%), %.0f acc/s, ETA %s", d, t, pct, rate, eta)
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
	}
}

// writeTrace dumps the tracer ring buffer as JSON.
func writeTrace(tr *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func parseTech(s string) (energy.Tech, error) {
	switch s {
	case "sram":
		return energy.SRAM, nil
	case "stt", "stt-ram", "sttram":
		return energy.STTRAM, nil
	case "racetrack", "rm", "dwm":
		return energy.Racetrack, nil
	default:
		return 0, fmt.Errorf("unknown technology %q", s)
	}
}

func parseScheme(s string) (shiftctrl.Scheme, error) {
	switch s {
	case "baseline", "none":
		return shiftctrl.Baseline, nil
	case "sts":
		return shiftctrl.STSOnly, nil
	case "sed":
		return shiftctrl.SED, nil
	case "secded", "pecc":
		return shiftctrl.SECDED, nil
	case "pecco", "pecc-o":
		return shiftctrl.PECCO, nil
	case "worst", "pecc-s-worst":
		return shiftctrl.PECCSWorst, nil
	case "adaptive", "pecc-s-adaptive":
		return shiftctrl.PECCSAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", s)
	}
}

func class(w trace.Workload) string {
	if w.CapacitySensitive {
		return "capacity-sensitive"
	}
	return "capacity-insensitive"
}

func human(seconds float64) string {
	switch {
	case seconds >= mttf.SecondsPerYear:
		return fmt.Sprintf("%.3g years", mttf.Years(seconds))
	case seconds >= 86400:
		return fmt.Sprintf("%.3g days", seconds/86400)
	case seconds >= 1:
		return fmt.Sprintf("%.3g s", seconds)
	default:
		return fmt.Sprintf("%.3g us", seconds*1e6)
	}
}
