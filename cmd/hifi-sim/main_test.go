package main

import (
	"testing"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/shiftctrl"
)

func TestParseTech(t *testing.T) {
	cases := map[string]energy.Tech{
		"sram": energy.SRAM, "stt": energy.STTRAM, "stt-ram": energy.STTRAM,
		"sttram": energy.STTRAM, "racetrack": energy.Racetrack,
		"rm": energy.Racetrack, "dwm": energy.Racetrack,
	}
	for in, want := range cases {
		got, err := parseTech(in)
		if err != nil || got != want {
			t.Errorf("parseTech(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseTech("flash"); err == nil {
		t.Error("parseTech accepted unknown technology")
	}
}

func TestParseScheme(t *testing.T) {
	cases := map[string]shiftctrl.Scheme{
		"baseline": shiftctrl.Baseline,
		"none":     shiftctrl.Baseline,
		"sts":      shiftctrl.STSOnly,
		"sed":      shiftctrl.SED,
		"secded":   shiftctrl.SECDED,
		"pecc":     shiftctrl.SECDED,
		"pecco":    shiftctrl.PECCO,
		"worst":    shiftctrl.PECCSWorst,
		"adaptive": shiftctrl.PECCSAdaptive,
	}
	for in, want := range cases {
		got, err := parseScheme(in)
		if err != nil || got != want {
			t.Errorf("parseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScheme("magic"); err == nil {
		t.Error("parseScheme accepted unknown scheme")
	}
}

func TestHumanDurations(t *testing.T) {
	cases := map[float64]string{
		3.156e7 * 69: "69 years",
		86400 * 2:    "2 days",
		5:            "5 s",
		2e-6:         "2 us",
	}
	for in, want := range cases {
		if got := human(in); got != want {
			t.Errorf("human(%v) = %q, want %q", in, got, want)
		}
	}
}
