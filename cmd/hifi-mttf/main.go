// Command hifi-mttf is a reliability calculator for racetrack-memory shift
// operations: MTTF from error rates and intensities, safe shift distances,
// and the adaptive shift-sequence table (paper Table 3).
//
// Usage:
//
//	hifi-mttf                        # defaults: Table 3 reproduction
//	hifi-mttf -rate 1e-19 -intensity 83e6
//	hifi-mttf -distance 7 -table    # adapter table for a 7-step shift
//	hifi-mttf -scheme secded -seglen 8 -intensity 50e6
package main

import (
	"flag"
	"fmt"

	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry/log"
)

func main() {
	var (
		rate      = flag.Float64("rate", 0, "per-stripe per-shift error rate (0 = use device model)")
		intensity = flag.Float64("intensity", 83e6, "shift intensity, operations/second")
		stripes   = flag.Int("stripes", 512, "stripes shifting together per operation")
		targetY   = flag.Float64("target-years", 10, "DUE MTTF target in years")
		distance  = flag.Int("distance", 7, "shift distance for the sequence table")
		segLen    = flag.Int("seglen", 8, "segment length (max distance + 1)")
		table     = flag.Bool("table", false, "print the adaptive sequence table")
	)
	obs := cliutil.NewObs("hifi-mttf")
	flag.Parse()
	obs.Start()
	defer finish(obs)

	target := *targetY * mttf.SecondsPerYear
	var em errmodel.Model

	if *rate > 0 {
		m := mttf.FromRate(*rate, *intensity*float64(*stripes))
		fmt.Printf("per-stripe rate %.3g at %.3g ops/s x %d stripes:\n", *rate, *intensity, *stripes)
		fmt.Printf("  MTTF = %.3g s = %.3g years (%.0f FIT)\n", m, mttf.Years(m), mttf.ToFIT(m))
		fmt.Printf("  meets %g-year target: %v\n", *targetY, m >= target)
		return
	}

	fmt.Printf("device model (Table 2 rates), %d-stripe groups, %.3g ops/s, %g-year DUE target\n\n",
		*stripes, *intensity, *targetY)

	fmt.Println("safe distance vs intensity (Table 3a):")
	for n := 1; n < *segLen; n++ {
		fmt.Printf("  Dsafe=%d  k2=%.3g  max intensity %.3g ops/s\n",
			n, em.K2Rate(n), shiftctrl.SafeIntensity(em, n, target, *stripes))
	}
	maxRate := mttf.MaxRateFor(target, *intensity*float64(*stripes))
	d := shiftctrl.SafeDistance(em, maxRate, *segLen-1)
	fmt.Printf("\nsafe distance at %.3g ops/s: %d steps\n", *intensity, d)

	if *table {
		p := shiftctrl.NewPlanner(em, shiftctrl.DefaultTiming(), *segLen-1, *segLen-1)
		a := shiftctrl.NewAdapter(p, 2e9, target, *stripes)
		fmt.Printf("\nadaptive sequences for a %d-step shift (Table 3b):\n", *distance)
		fmt.Printf("  %-14s %-24s %s\n", "min interval", "sequence", "latency")
		for _, row := range a.Table(*distance) {
			fmt.Printf("  %-14d %-24s %d cycles\n", row.MinInterval,
				fmt.Sprintf("%v", row.Seq), row.Cycles)
		}
	}
}

// finish flushes the observability artifacts (manifest, metrics, spans)
// when the shared flags requested any.
func finish(o *cliutil.Obs) {
	if err := o.Finish(); err != nil {
		log.Fatalf("hifi-mttf: %v", err)
	}
}
