// Command hifi-report runs the full evaluation and renders it as a
// report: markdown (-o) and/or a single self-contained HTML file
// (-html) embedding every table, the paper-fidelity scorecard, the
// windowed time-series charts, a span flamegraph, and the run
// manifest. It also evaluates the fidelity anchor set against the
// generated tables (-fidelity-out writes the scorecard JSON,
// -fidelity-gate makes failing anchors fail the run) — the CI drift
// gate is exactly this binary.
//
// Usage:
//
//	hifi-report -o report.md                # full size (~2 min)
//	hifi-report -scaled -o report.md        # scaled hierarchy (seconds)
//	hifi-report -scaled -html report.html   # self-contained HTML report
//	hifi-report -scaled -jobs 8 -cache-dir .hificache \
//	    -fidelity-out fidelity.json -fidelity-gate
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"racetrack/hifi/internal/bench"
	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/fidelity"
	"racetrack/hifi/internal/profile"
	"racetrack/hifi/internal/report"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
)

func main() {
	var (
		out          = flag.String("o", "", "output markdown file (default stdout when -html unset)")
		htmlOut      = flag.String("html", "", "write a self-contained HTML report to this file")
		fidelityOut  = flag.String("fidelity-out", "", "write the fidelity scorecard JSON to this file")
		fidelityGate = flag.Bool("fidelity-gate", false, "exit nonzero when any fidelity anchor fails")
		scaled       = flag.Bool("scaled", false, "scaled-down hierarchy")
		accesses     = flag.Int("accesses", 0, "trace length per core (0 = default)")
		seed         = flag.Uint64("seed", 1, "trace seed")
		benchGlob    = flag.String("bench-glob", "BENCH_*.json",
			"bench snapshots for the HTML report's trajectory section (empty disables)")
	)
	obs := cliutil.NewObs("hifi-report")
	engFlags := cliutil.NewEngineFlags()
	flag.Parse()
	if *htmlOut != "" {
		// The HTML report's Performance section folds the span tree into
		// self-time tables, so spans are collected even without -spans-out.
		obs.EnableSpans()
	}
	ctx := obs.Start()
	eng, err := engFlags.Build(obs)
	if err != nil {
		log.Fatalf("hifi-report: %v", err)
	}

	opts := experiments.DefaultRunOpts()
	if *scaled {
		opts = experiments.QuickRunOpts()
	}
	if *accesses > 0 {
		opts.AccessesPerCore = *accesses
	}
	opts.Seed = *seed
	opts.Metrics = obs.Reg
	opts.Sampler = obs.TS
	opts.Events = obs.Events
	opts.Eng = eng

	order := experiments.Order()
	tables := make(map[string]experiments.Table, len(order))
	for i, k := range order {
		log.Infof("running %s (%d/%d)", k, i+1, len(order))
		obs.Phase(k)
		kctx, ksp := telemetry.StartSpan(ctx, "experiment:"+k)
		opts.Ctx = kctx
		tables[k] = experiments.All(opts)[k]()
		ksp.End()
		if el := ksp.Duration(); el > 0 {
			log.Debugf("finished %s in %v", k, el)
		}
	}
	engFlags.Finish(eng)

	// The scorecard derives from the tables alone, so it inherits the
	// engine's determinism: byte-identical at any -jobs setting and
	// cache temperature.
	scorecard := fidelity.Evaluate(fidelity.Anchors(), tables)
	scorecard.Emit(obs.Events)
	log.Infof("fidelity: %d pass, %d warn, %d fail, %d skip",
		scorecard.Pass, scorecard.Warn, scorecard.Fail, scorecard.Skip)
	if *fidelityOut != "" {
		if err := scorecard.WriteFile(*fidelityOut); err != nil {
			log.Fatalf("hifi-report: %v", err)
		}
		obs.AddOutput(*fidelityOut)
		log.Infof("wrote %s", *fidelityOut)
	}

	md := renderMarkdown(order, tables, *scaled, opts)
	switch {
	case *out != "":
		if err := writeReport(*out, md); err != nil {
			log.Fatalf("hifi-report: %v", err)
		}
		obs.AddOutput(*out)
		log.Infof("wrote %s (%d experiments)", *out, len(order))
	case *htmlOut == "":
		fmt.Print(md)
	}

	if *htmlOut != "" {
		if err := writeReport(*htmlOut, string(buildHTML(obs, eng, *benchGlob, order, tables, scorecard, *scaled, opts))); err != nil {
			log.Fatalf("hifi-report: %v", err)
		}
		obs.AddOutput(*htmlOut)
		log.Infof("wrote %s", *htmlOut)
	}

	if err := obs.Finish(); err != nil {
		log.Fatalf("hifi-report: %v", err)
	}
	if *fidelityGate {
		if err := scorecard.Err(); err != nil {
			log.Errorf("hifi-report: %v", err)
			os.Exit(1)
		}
	}
}

// buildHTML assembles the report.Data from everything the run
// produced: tables, scorecard, sampled time-series, span tree, the
// performance section (self-time analysis, bench trajectory, per-job
// resources), and the manifest-so-far (finished separately by
// obs.Finish).
func buildHTML(obs *cliutil.Obs, eng *engine.Engine, benchGlob string,
	order []string, tables map[string]experiments.Table,
	sc fidelity.Scorecard, scaled bool, opts experiments.RunOpts) []byte {
	d := report.Data{
		Title: "Hi-fi Playback reproduction report",
		Params: []report.Param{
			{Key: "scaled", Value: fmt.Sprint(scaled)},
			{Key: "accesses/core", Value: fmt.Sprint(opts.AccessesPerCore)},
			{Key: "seed", Value: fmt.Sprint(opts.Seed)},
		},
		Keys:      order,
		Tables:    tables,
		Scorecard: &sc,
	}
	if se := obs.TS.Export(); len(se.Windows) > 0 {
		d.Series = &se
	}
	if obs.Col != nil {
		e := obs.Col.Export()
		d.Spans = &e
		d.Perf = profile.Analyze(e)
		d.Perf.Heap = profile.HeapHotspots(profile.DefaultHeapTop)
	}
	if eng != nil {
		rs := eng.Resources()
		d.Resources = &rs
	}
	d.Trajectory = loadTrajectory(benchGlob)
	var mb bytes.Buffer
	if err := obs.Man.WriteJSON(&mb); err == nil {
		d.ManifestJSON = mb.Bytes()
	}
	return report.HTML(d)
}

// loadTrajectory folds the committed bench snapshots matching glob into
// the report's trajectory. Fewer than two snapshots (or a bad glob) just
// drops the subsection — the report must render on a fresh checkout.
func loadTrajectory(glob string) *bench.Trajectory {
	if glob == "" {
		return nil
	}
	paths, err := filepath.Glob(glob)
	if err != nil || len(paths) < 2 {
		return nil
	}
	tr, err := bench.LoadTrajectory(paths)
	if err != nil {
		log.Errorf("hifi-report: bench trajectory: %v", err)
		return nil
	}
	return tr
}

func renderMarkdown(order []string, tables map[string]experiments.Table,
	scaled bool, opts experiments.RunOpts) string {
	var b strings.Builder
	b.WriteString("# Hi-fi Playback reproduction report\n\n")
	fmt.Fprintf(&b, "Generated by hifi-report: scaled=%v, accesses/core=%d, seed=%d.\n\n",
		scaled, opts.AccessesPerCore, opts.Seed)
	b.WriteString("Each section reproduces one table or figure of the paper's\n")
	b.WriteString("evaluation; see EXPERIMENTS.md for the paper-vs-measured analysis.\n\n")
	for _, k := range order {
		tab := tables[k]
		fmt.Fprintf(&b, "## %s\n\n", tab.Title)
		if tab.Note != "" {
			fmt.Fprintf(&b, "_%s_\n\n", tab.Note)
		}
		writeMarkdownTable(&b, tab)
		b.WriteString("\n")
	}
	return b.String()
}

// writeReport streams the report to path, surfacing short writes and
// close failures instead of swallowing them.
func writeReport(path, content string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(content); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeMarkdownTable(b *strings.Builder, t experiments.Table) {
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
}
