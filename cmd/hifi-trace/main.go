// Command hifi-trace records, inspects, and summarizes workload traces.
//
// Usage:
//
//	hifi-trace -workload canneal -n 100000 -o canneal.hftr   # record
//	hifi-trace -i canneal.hftr -stats                         # summarize
//	hifi-trace -i canneal.hftr -head 20                       # dump records
package main

import (
	"flag"
	"fmt"
	"os"

	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload to record")
		core     = flag.Int("core", 0, "core whose stream to record")
		n        = flag.Int("n", 100_000, "records to generate")
		seed     = flag.Uint64("seed", 1, "trace seed")
		out      = flag.String("o", "", "output trace file")
		in       = flag.String("i", "", "input trace file to inspect")
		head     = flag.Int("head", 0, "dump the first N records")
		stats    = flag.Bool("stats", false, "print summary statistics")
	)
	obs := cliutil.NewObs("hifi-trace")
	flag.Parse()
	obs.Start()

	switch {
	case *workload != "" && *out != "":
		record(*workload, *core, *n, *seed, *out)
		obs.AddOutput(*out)
	case *in != "":
		inspect(*in, *head, *stats)
	default:
		log.Errorf("hifi-trace: use -workload/-o to record or -i to inspect")
		os.Exit(2)
	}
	if err := obs.Finish(); err != nil {
		log.Fatalf("hifi-trace: %v", err)
	}
}

func record(name string, core, n int, seed uint64, path string) {
	w, err := trace.ByName(name)
	if err != nil {
		log.Fatalf("hifi-trace: %v", err)
	}
	recs := trace.NewGenerator(w, core, seed).Take(n)
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("hifi-trace: %v", err)
	}
	if err := trace.WriteTrace(f, recs); err != nil {
		_ = f.Close()
		log.Fatalf("hifi-trace: write: %v", err)
	}
	// Close before reporting: a short write surfaces here, and the size
	// on disk is final.
	if err := f.Close(); err != nil {
		log.Fatalf("hifi-trace: close: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatalf("hifi-trace: stat: %v", err)
	}
	log.Infof("recorded %d accesses of %s (core %d) to %s (%.1f bytes/record)",
		n, name, core, path, float64(fi.Size())/float64(n))
}

func inspect(path string, head int, stats bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("hifi-trace: %v", err)
	}
	recs, err := trace.ReadTrace(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		log.Fatalf("hifi-trace: read: %v", err)
	}
	log.Debugf("loaded %d records from %s", len(recs), path)
	fmt.Printf("%s: %d records\n", path, len(recs))
	for i := 0; i < head && i < len(recs); i++ {
		op := "R"
		if recs[i].Write {
			op = "W"
		}
		fmt.Printf("  %6d  %s %#010x  gap=%d\n", i, op, recs[i].Addr, recs[i].Gap)
	}
	if !stats {
		return
	}
	var writes, gaps int
	lines := map[uint64]int{}
	var maxAddr uint64
	for _, r := range recs {
		if r.Write {
			writes++
		}
		gaps += r.Gap
		lines[r.Addr]++
		if r.Addr > maxAddr {
			maxAddr = r.Addr
		}
	}
	reuse := float64(len(recs)) / float64(len(lines))
	fmt.Printf("  writes      %.1f%%\n", 100*float64(writes)/float64(len(recs)))
	fmt.Printf("  mean gap    %.2f cycles\n", float64(gaps)/float64(len(recs)))
	fmt.Printf("  footprint   %d lines (%.1f MB max addr)\n", len(lines), float64(maxAddr)/(1<<20))
	fmt.Printf("  reuse       %.2f accesses/line\n", reuse)
}
