// Command hifi-chaos runs a fault-injection campaign: it sweeps a fault
// plan across an intensity axis for several protection schemes and
// prints degradation curves — DUE MTTF, SDC MTTF, and normalized
// execution time versus fault intensity. See docs/faults.md for the
// plan schema and how to read the curves.
//
// Usage:
//
//	hifi-chaos -scaled                         # quick campaign, mixed preset
//	hifi-chaos -faults temp -intensities 0,1,2,4,8
//	hifi-chaos -fault-plan plan.json -schemes sed,secded,adaptive
//	hifi-chaos -scaled -cache-dir .hificache -jobs 8
//
// Each (scheme, intensity, workload) simulation is one engine job, so
// -cache-dir/-resume/-jobs behave exactly as in hifi-experiments; the
// fault plan is part of each job's fingerprint, so injected and nominal
// results never share cache entries.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/faults"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry/log"
)

func main() {
	var (
		intensities = flag.String("intensities", "0,0.5,1,2,4", "comma-separated fault-intensity sweep points")
		schemes     = flag.String("schemes", "baseline,sed,secded,adaptive", "comma-separated protection schemes to compare")
		scaled      = flag.Bool("scaled", false, "scaled-down hierarchy for quick campaigns")
		accesses    = flag.Int("accesses", 0, "trace length per core (0 = default)")
		seed        = flag.Uint64("seed", 1, "trace seed")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir      = flag.String("out", "", "write one CSV file per curve into this directory")
	)
	obs := cliutil.NewObs("hifi-chaos")
	engFlags := cliutil.NewEngineFlags()
	faultFlags := cliutil.NewFaultFlags()
	flag.Parse()

	xs, err := parseIntensities(*intensities)
	if err != nil {
		log.Fatalf("hifi-chaos: %v", err)
	}
	ss, err := parseSchemes(*schemes)
	if err != nil {
		log.Fatalf("hifi-chaos: %v", err)
	}
	plan, err := faultFlags.Plan()
	if err != nil {
		log.Fatalf("hifi-chaos: %v", err)
	}
	if plan == nil {
		// A chaos campaign with no faults is a no-op; default to the
		// mixed preset rather than sweeping the nominal device N times.
		plan, err = faults.Preset("mixed")
		if err != nil {
			log.Fatalf("hifi-chaos: %v", err)
		}
		log.Infof("no fault plan given; using the mixed preset")
	}

	ctx := obs.Start()
	eng, err := engFlags.Build(obs)
	if err != nil {
		log.Fatalf("hifi-chaos: %v", err)
	}

	run := experiments.DefaultRunOpts()
	if *scaled {
		run = experiments.QuickRunOpts()
	}
	if *accesses > 0 {
		run.AccessesPerCore = *accesses
	}
	if *seed != 0 {
		run.Seed = *seed
	}
	run.Metrics = obs.Reg
	run.Sampler = obs.TS
	run.Events = obs.Events
	run.Eng = eng
	run.Ctx = ctx

	opts := experiments.ChaosOpts{RunOpts: run, Plan: plan, Intensities: xs, Schemes: ss}
	log.Infof("campaign: %d injector(s) x %d intensities x %d schemes",
		len(plan.Injectors), len(xs), len(ss))
	tables := experiments.Degradation(opts)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatalf("hifi-chaos: %v", err)
		}
	}
	names := []string{"due_mttf", "sdc_mttf", "exec_time"}
	for i, tab := range tables {
		switch {
		case *outDir != "":
			path := filepath.Join(*outDir, "chaos_"+names[i]+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				log.Fatalf("hifi-chaos: %v", err)
			}
			obs.AddOutput(path)
			log.Infof("wrote %s", path)
		case *csv:
			fmt.Print(tab.CSV())
		default:
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(tab.String())
		}
	}

	engFlags.Finish(eng)
	if err := obs.Finish(); err != nil {
		log.Fatalf("hifi-chaos: %v", err)
	}
}

func parseIntensities(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad intensity %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -intensities")
	}
	return out, nil
}

func parseSchemes(s string) ([]shiftctrl.Scheme, error) {
	var out []shiftctrl.Scheme
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(strings.ToLower(f))
		if f == "" {
			continue
		}
		var sc shiftctrl.Scheme
		switch f {
		case "baseline", "none":
			sc = shiftctrl.Baseline
		case "sts":
			sc = shiftctrl.STSOnly
		case "sed":
			sc = shiftctrl.SED
		case "secded", "pecc":
			sc = shiftctrl.SECDED
		case "pecco", "pecc-o":
			sc = shiftctrl.PECCO
		case "worst", "pecc-s-worst":
			sc = shiftctrl.PECCSWorst
		case "adaptive", "pecc-s-adaptive":
			sc = shiftctrl.PECCSAdaptive
		default:
			return nil, fmt.Errorf("unknown scheme %q", f)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -schemes")
	}
	return out, nil
}
