// Command hifi-bench runs the pinned benchmark suite and writes a
// versioned snapshot, or compares two snapshots and fails on regression.
// The suite covers the hot paths of the reproduction: the RTM shift loop,
// p-ECC decode, a full memsim replay, one small experiment sweep, the
// parallel experiment engine (serial vs 4-worker vs warm-cache), and the
// serve daemon's submit-to-first-event path — micro and macro, so a slow
// decoder, a slow simulator, or a slow job API all trip the gate.
//
// Usage:
//
//	hifi-bench                                  # run, write BENCH_<date>.json
//	hifi-bench -quick -out BENCH_ci.json        # smaller workloads (CI smoke)
//	hifi-bench -compare BENCH_old.json          # run now, compare, exit 1 on >10% slowdown
//	hifi-bench -compare BENCH_old.json BENCH_new.json   # compare two files
//	hifi-bench -trajectory BENCH_*.json         # first-vs-last deltas over >= 2 snapshots
//	hifi-bench -trajectory -svg-out trend.svg BENCH_*.json   # plus the trend chart
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"racetrack/hifi/internal/bench"
	"racetrack/hifi/internal/cache"
	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/memsim"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/serve"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/trace"
)

func main() {
	var (
		out        = flag.String("out", "", "snapshot output path (default BENCH_<date>.json)")
		quick      = flag.Bool("quick", false, "smaller workloads for CI smoke runs")
		compare    = flag.Bool("compare", false, "compare mode: hifi-bench -compare OLD [NEW]")
		threshold  = flag.Float64("threshold", bench.DefaultThreshold, "relative ns/op slowdown treated as a regression")
		allocThr   = flag.Float64("alloc-threshold", bench.DefaultAllocThreshold, "relative allocs/op growth treated as a regression (negative disables the gate)")
		trajectory = flag.Bool("trajectory", false, "trajectory mode: hifi-bench -trajectory SNAP.json... (>= 2 snapshots)")
		svgOut     = flag.String("svg-out", "", "with -trajectory, write the trend chart SVG here")
		verbose    = flag.Bool("v", false, "debug logging (overrides HIFI_LOG)")
		quiet      = flag.Bool("q", false, "errors only (overrides HIFI_LOG)")
	)
	ev := cliutil.AddEventsOut(flag.CommandLine, "hifi-bench")
	flag.Parse()
	switch {
	case *quiet:
		log.SetLevel(log.Error)
	case *verbose:
		log.SetLevel(log.Debug)
	}

	// hifi-bench does not carry the full Obs surface (it has no status
	// server and must not measure its own telemetry), so it drives the
	// event sink directly. bus is nil without -events-out; every Emit
	// below is a no-op then.
	bus, err := ev.Open()
	if err != nil {
		log.Fatalf("hifi-bench: %v", err)
	}
	start := time.Now()
	bus.Emit(events.Event{Type: events.RunStart, Name: "hifi-bench"})
	finish := func() {
		bus.Emit(events.Event{Type: events.RunFinish, Name: "hifi-bench", MS: time.Since(start).Milliseconds()})
		if err := ev.Close(); err != nil {
			log.Fatalf("hifi-bench: events: %v", err)
		}
	}

	if *compare {
		runCompare(flag.Args(), *quick, *threshold, *allocThr, bus, finish)
		return
	}
	if *trajectory {
		runTrajectory(flag.Args(), *svgOut)
		finish()
		return
	}

	snap := runSuite(*quick)
	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	if err := snap.WriteFile(path); err != nil {
		log.Fatalf("hifi-bench: %v", err)
	}
	log.Infof("wrote %s (%d benchmarks)", path, len(snap.Results))
	printSnapshot(snap)
	finish()
}

// runCompare loads the baseline, obtains the candidate (second file or a
// fresh run), prints the per-benchmark deltas, and exits 1 if any exceeds
// the ns/op or allocs/op threshold. Each regression is also emitted as a
// bench.regression event (Name=benchmark, V=ns/op ratio) before finish
// seals the event log, so a CI gate failure leaves a machine-readable
// trace alongside the human one.
func runCompare(args []string, quick bool, threshold, allocThr float64, bus *events.Bus, finish func()) {
	if len(args) < 1 || len(args) > 2 {
		log.Errorf("hifi-bench: -compare needs OLD.json [NEW.json]")
		os.Exit(2)
	}
	old, err := bench.ReadFile(args[0])
	if err != nil {
		log.Fatalf("hifi-bench: %v", err)
	}
	var cur *bench.Snapshot
	if len(args) == 2 {
		if cur, err = bench.ReadFile(args[1]); err != nil {
			log.Fatalf("hifi-bench: %v", err)
		}
	} else {
		cur = runSuite(quick)
	}

	deltas := bench.Compare(old, cur)
	printDeltas(deltas)
	regs := bench.Regressions(deltas, threshold, allocThr)
	if len(regs) > 0 {
		for _, d := range regs {
			var detail string
			switch {
			case d.MissingNew:
				detail = "missing from new snapshot"
				log.Errorf("hifi-bench: %s missing from new snapshot", d.Name)
			case d.Regressed(threshold):
				detail = fmt.Sprintf("ns/op regressed %.1f%%", 100*(d.Ratio-1))
				log.Errorf("hifi-bench: %s regressed %.1f%% (threshold %.0f%%)",
					d.Name, 100*(d.Ratio-1), 100*threshold)
			default:
				detail = fmt.Sprintf("allocs/op grew %d -> %d", d.OldAllocs, d.NewAllocs)
				log.Errorf("hifi-bench: %s allocs/op grew %d -> %d (threshold %.0f%%)",
					d.Name, d.OldAllocs, d.NewAllocs, 100*allocThr)
			}
			bus.Emit(events.Event{Type: events.BenchRegression, Name: d.Name, Detail: detail, V: d.Ratio})
		}
		finish()
		os.Exit(1)
	}
	log.Infof("no regression beyond %.0f%% ns/op or %.0f%% allocs/op across %d benchmarks",
		100*threshold, 100*allocThr, len(deltas))
	finish()
}

// printDeltas renders the shared delta table for compare and trajectory.
func printDeltas(deltas []bench.Delta) {
	fmt.Printf("%-24s %14s %14s %8s %18s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs/op")
	for _, d := range deltas {
		if d.MissingNew {
			fmt.Printf("%-24s %14.0f %14s %8s %18s\n", d.Name, d.Old, "missing", "-", "-")
			continue
		}
		fmt.Printf("%-24s %14.0f %14.0f %7.2fx %8d -> %7d\n",
			d.Name, d.Old, d.New, d.Ratio, d.OldAllocs, d.NewAllocs)
	}
}

// runTrajectory folds the named snapshots into first-vs-last deltas and,
// optionally, the SVG trend chart. Informational: it never exits non-zero
// on a slowdown — history is reported, not gated.
func runTrajectory(paths []string, svgOut string) {
	tr, err := bench.LoadTrajectory(paths)
	if err != nil {
		log.Fatalf("hifi-bench: %v", err)
	}
	first, last := tr.Snapshots[0], tr.Snapshots[len(tr.Snapshots)-1]
	fmt.Printf("trajectory over %d snapshots: %s (%s) -> %s (%s)\n",
		len(tr.Snapshots), first.Path, first.DateUTC, last.Path, last.DateUTC)
	printDeltas(tr.Deltas())
	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(tr.SVG()), 0o644); err != nil {
			log.Fatalf("hifi-bench: %v", err)
		}
		log.Infof("wrote %s", svgOut)
	}
}

// runSuite executes the pinned suite and stamps provenance. Workload sizes
// are fixed per mode so snapshots are comparable run to run.
func runSuite(quick bool) *bench.Snapshot {
	man := telemetry.NewManifest("hifi-bench") // reuse its provenance capture
	snap := &bench.Snapshot{
		Schema:    bench.SchemaVersion,
		DateUTC:   time.Now().UTC().Format(time.RFC3339),
		GitSHA:    man.GitSHA,
		GoVersion: man.GoVersion,
		Host:      man.Hostname,
		Quick:     quick,
	}
	for _, b := range []struct {
		name string
		run  func(bool) bench.Result
	}{
		{"rtm-shift-loop", benchShiftLoop},
		{"pecc-decode", benchPECCDecode},
		{"memsim-replay", benchMemsimReplay},
		{"sweep-small", benchSweep},
		{"engine-parallel-sweep", benchEngineSweep},
		{"events-emit", benchEventsEmit},
		{"serve-submit", benchServeSubmit},
	} {
		log.Infof("benchmarking %s", b.name)
		r := b.run(quick)
		r.Name = b.name
		log.Debugf("%s: %.0f ns/op, %d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		snap.Add(r)
	}
	return snap
}

func printSnapshot(s *bench.Snapshot) {
	for _, r := range s.Results {
		fmt.Printf("%-24s %12.0f ns/op %8d B/op %6d allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		for k, v := range r.Rates {
			fmt.Printf("  %s=%.3g", k, v)
		}
		fmt.Println()
	}
}

// toResult converts a testing result, deriving domain rates from the known
// per-op work: rates[k] = perOp[k] / seconds-per-op.
func toResult(r testing.BenchmarkResult, perOp map[string]float64) bench.Result {
	out := bench.Result{
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if out.NsPerOp > 0 && len(perOp) > 0 {
		out.Rates = make(map[string]float64, len(perOp))
		for k, v := range perOp {
			out.Rates[k] = v * 1e9 / out.NsPerOp
		}
	}
	return out
}

// benchShiftLoop measures the raw head-position bookkeeping: the
// AccessDistance/MoveHead pair over a strided line pattern.
func benchShiftLoop(quick bool) bench.Result {
	const ways = 8
	geom := cache.DefaultRTM()
	capacity := int64(1 << 20)
	// The pattern is deterministic, so count its per-op shift work once.
	dry := cache.NewRTMArray(geom, capacity)
	const probe = 1 << 12
	for i := 0; i < probe; i++ {
		shiftLoopStep(dry, i, ways)
	}
	stepsPerOp := float64(dry.ShiftSteps) / probe
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		arr := cache.NewRTMArray(geom, capacity)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			shiftLoopStep(arr, i, ways)
		}
	})
	return toResult(res, map[string]float64{"shift_steps_per_sec": stepsPerOp})
}

func shiftLoopStep(arr *cache.RTMArray, i, ways int) {
	g, d, dir := arr.AccessDistance(i*7%2048, i%ways, ways)
	arr.MoveHead(g, d, dir, 1)
}

// benchPECCDecode measures one SECDED p-ECC decode of a window carrying a
// detectable position error.
func benchPECCDecode(quick bool) bench.Result {
	code := pecc.SECDED(8)
	w := code.ExpectedWindow(3)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := code.Decode(2, w); !r.Detected {
				b.Fatal("expected detection")
			}
		}
	})
	return toResult(res, map[string]float64{"decodes_per_sec": 1})
}

// benchConfig is the pinned memsim-replay configuration: racetrack LLC,
// adaptive p-ECC-S, scaled hierarchy, ferret trace.
func benchConfig(quick bool) memsim.Config {
	cfg := memsim.DefaultConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	cfg.L1Capacity = 2 << 10
	cfg.L2Capacity = 8 << 10
	cfg.L3Capacity = 1 << 20
	cfg.AccessesPerCore = 4000
	if quick {
		cfg.AccessesPerCore = 1000
	}
	cfg.Seed = 1
	return cfg
}

// benchMemsimReplay measures one full hierarchy simulation per op, with no
// registry and no span collector attached — it doubles as the telemetry
// zero-overhead guard: this path must not pay for observability it did not
// ask for.
func benchMemsimReplay(quick bool) bench.Result {
	cfg := benchConfig(quick)
	w, err := trace.ByName("ferret")
	if err != nil {
		log.Fatalf("hifi-bench: %v", err)
	}
	w.WorkingSetB >>= 7
	if w.WorkingSetB < 12<<10 {
		w.WorkingSetB = 12 << 10
	}
	// One dry run for the deterministic per-op counters.
	r, err := memsim.Run(w, cfg)
	if err != nil {
		log.Fatalf("hifi-bench: %v", err)
	}
	accesses := float64(cfg.AccessesPerCore * cfg.Cores)
	shifts := float64(r.ShiftSteps)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := memsim.Run(w, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	return toResult(res, map[string]float64{
		"accesses_per_sec":    accesses,
		"shift_steps_per_sec": shifts,
	})
}

// benchEventsEmit measures one structured-event emit on a detached bus
// (ring buffer only: no sink, no subscribers) — the cost every
// instrumented hot path pays once an event plane is attached. The
// nil-bus fast path is guarded separately by an allocs/op test in the
// events package (must be exactly 0).
func benchEventsEmit(quick bool) bench.Result {
	bus := events.New(0)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Emit(events.Event{Type: events.JobFinished, Name: "bench", Worker: 1, N: int64(i)})
		}
	})
	return toResult(res, map[string]float64{"events_per_sec": 1})
}

// benchSweep measures one small simulation-backed experiment sweep (Fig 14
// on the scaled hierarchy): the macro path the CLIs actually execute.
func benchSweep(quick bool) bench.Result {
	opts := experiments.QuickRunOpts()
	if quick {
		opts.AccessesPerCore = 1000
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.Fig14(opts)
		}
	})
	return toResult(res, nil)
}

// benchEngineSweep times the same sweep (Fig 10, 36 simulations) through
// the experiment engine three ways — serial, 4 workers, and a warm-cache
// re-run — and records the ratios. One sweep is one op, timed by hand
// rather than through testing.Benchmark: the comparisons between the
// three passes are the measurement, and each pass is expensive enough
// that one iteration is representative. Speedup depends on the host's
// core count; the snapshot records whatever this host delivers.
func benchEngineSweep(quick bool) bench.Result {
	opts := experiments.QuickRunOpts()
	if quick {
		opts.AccessesPerCore = 1000
	}
	sweep := func(eng *engine.Engine) time.Duration {
		o := opts
		o.Eng = eng
		start := time.Now()
		experiments.Fig10(o)
		return time.Since(start)
	}

	serialT := sweep(engine.New(engine.Options{Workers: 1}))
	parT := sweep(engine.New(engine.Options{Workers: 4}))

	dir, err := os.MkdirTemp("", "hifi-bench-cache-*")
	if err != nil {
		log.Fatalf("hifi-bench: %v", err)
	}
	defer os.RemoveAll(dir)
	openCache := func() *engine.Cache {
		c, err := engine.OpenCache(dir, "bench")
		if err != nil {
			log.Fatalf("hifi-bench: %v", err)
		}
		return c
	}
	sweep(engine.New(engine.Options{Workers: 4, Cache: openCache()}))
	warmEng := engine.New(engine.Options{Workers: 4, Cache: openCache()})
	warmT := sweep(warmEng)
	st := warmEng.Status()

	rates := map[string]float64{
		"parallel_speedup_x":   float64(serialT) / float64(parT),
		"warm_cache_speedup_x": float64(serialT) / float64(warmT),
	}
	if st.Jobs > 0 {
		rates["warm_cache_hit_frac"] = float64(st.CacheHits) / float64(st.Jobs)
	}
	return bench.Result{
		Iterations: 1,
		NsPerOp:    float64(parT.Nanoseconds()),
		Rates:      rates,
	}
}

// benchServeSubmit measures the daemon's admission hot path over real HTTP:
// one op is a POST /v1/jobs of a small analytic spec followed by reading the
// first frame off the job's SSE stream — the submit-to-first-event latency a
// client observes. Every op uses a fresh seed so no submission coalesces
// onto a live twin; table3 is analytic, so the runners drain jobs faster
// than the client can submit them and the queue never backs up.
func benchServeSubmit(quick bool) bench.Result {
	dir, err := os.MkdirTemp("", "hifi-bench-serve-*")
	if err != nil {
		log.Fatalf("hifi-bench: %v", err)
	}
	defer os.RemoveAll(dir)
	srv := serve.New(serve.Options{
		CacheDir: dir,
		Runners:  4,
		Queue:    256,
		Metrics:  telemetry.NewRegistry(),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := srv.Drain(ctx); err != nil {
			log.Errorf("hifi-bench: serve drain: %v", err)
		}
	}()

	client := ts.Client()
	seed := uint64(0)
	submitAndAwaitEvent := func() error {
		seed++
		body, err := json.Marshal(serve.Spec{Run: []string{"table3"}, Scaled: true, Seed: seed})
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		var st struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		_ = resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
		ev, err := client.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			return err
		}
		defer ev.Body.Close()
		sc := bufio.NewScanner(ev.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data:") {
				return nil // first event frame landed
			}
		}
		return fmt.Errorf("stream for %s closed before the first event", st.ID)
	}

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := submitAndAwaitEvent(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return toResult(res, map[string]float64{"submits_per_sec": 1})
}
