// Command hifi-design searches the racetrack-memory design space: given
// reliability, area, and latency requirements it evaluates stripe
// geometries, protection schemes, and p-ECC strengths through the analytic
// models and prints the feasible configurations and their Pareto frontier.
//
// Usage:
//
//	hifi-design                                  # the paper's requirements
//	hifi-design -due 100 -max-area 9.5           # stricter reliability, area cap
//	hifi-design -intensity 20e6 -max-latency 10  # lighter duty cycle
package main

import (
	"flag"
	"fmt"

	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/design"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/telemetry/log"
)

func main() {
	var (
		dueYears  = flag.Float64("due", 10, "minimum DUE MTTF in years")
		sdcYears  = flag.Float64("sdc", 1000, "minimum SDC MTTF in years")
		maxArea   = flag.Float64("max-area", 0, "maximum area per data bit in F^2 (0 = unbounded)")
		maxLat    = flag.Float64("max-latency", 0, "maximum average shift cycles per access (0 = unbounded)")
		intensity = flag.Float64("intensity", 83e6, "sustained shift intensity, ops/s")
		all       = flag.Bool("all", false, "print every feasible point, not just the Pareto frontier")
	)
	obs := cliutil.NewObs("hifi-design")
	flag.Parse()
	obs.Start()

	req := design.Requirements{
		MinDUEYears: *dueYears,
		MinSDCYears: *sdcYears,
		MaxAreaPerBit: func() float64 {
			return *maxArea
		}(),
		MaxLatency: *maxLat,
		Intensity:  *intensity,
		Stripes:    512,
	}

	feasible, rejected := design.Search(design.DefaultSpace(), req)
	fmt.Printf("requirements: DUE >= %gy, SDC >= %gy, intensity %.3g ops/s",
		*dueYears, *sdcYears, *intensity)
	if *maxArea > 0 {
		fmt.Printf(", area <= %g F^2/b", *maxArea)
	}
	if *maxLat > 0 {
		fmt.Printf(", latency <= %g cycles", *maxLat)
	}
	fmt.Printf("\n%d feasible configurations (%d rejected)\n\n", len(feasible), rejected)

	points := design.Pareto(feasible)
	label := "Pareto frontier (area / latency / DUE MTTF)"
	if *all {
		points = feasible
		label = "all feasible configurations"
	}
	fmt.Println(label + ":")
	fmt.Printf("  %-32s %10s %10s %14s %14s %10s\n",
		"configuration", "F^2/bit", "cycles", "DUE MTTF", "SDC MTTF", "nJ/access")
	for _, p := range points {
		fmt.Printf("  %-32s %10.2f %10.2f %13.3gy %13.3gy %10.2f\n",
			p.Label(), p.AreaPerBit, p.AvgLatency,
			mttf.Years(p.DUEMTTF), mttf.Years(p.SDCMTTF), p.AvgEnergy)
	}
	if len(points) == 0 {
		fmt.Println("  (none — relax the requirements)")
	}
	if err := obs.Finish(); err != nil {
		log.Fatalf("hifi-design: %v", err)
	}
}
