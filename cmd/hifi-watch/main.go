// Command hifi-watch renders a live terminal dashboard from the
// structured event stream (hifi_events_v1): sweep progress, per-worker
// utilization, cache hit rate, open fault windows, retry/timeout
// counts, and an ETA. It consumes either the SSE /events route of a
// running hifi-* process (started with -pprof) or an NDJSON event log
// written with -events-out.
//
// Usage:
//
//	hifi-watch http://localhost:6060/events     # live, attached to a run
//	hifi-watch events.ndjson                    # live, tailing a log file
//	hifi-watch -once events.ndjson              # one frame, then exit
//	hifi-watch -once http://host:6060/events    # one -interval of events, one frame
//
// In live mode the screen redraws every -interval; -once renders a
// single frame and exits 0, which is what CI's watch-smoke uses. See
// docs/events.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/watch"
)

func main() {
	var (
		once     = flag.Bool("once", false, "render one frame and exit (CI / snapshot mode)")
		interval = flag.Duration("interval", time.Second, "live-mode redraw period (and the -once collection window for SSE sources)")
		verbose  = flag.Bool("v", false, "debug logging (overrides HIFI_LOG)")
		quiet    = flag.Bool("q", false, "errors only (overrides HIFI_LOG)")
	)
	flag.Parse()
	switch {
	case *quiet:
		log.SetLevel(log.Error)
	case *verbose:
		log.SetLevel(log.Debug)
	}
	if flag.NArg() != 1 {
		log.Errorf("hifi-watch: need exactly one source: an /events URL or an NDJSON file")
		os.Exit(2)
	}
	source := flag.Arg(0)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var mu sync.Mutex
	m := watch.NewModel()
	apply := func(e events.Event) { mu.Lock(); m.Apply(e); mu.Unlock() }

	switch {
	case *once && !watch.IsURL(source):
		if err := watch.ReadFileInto(m, source); err != nil {
			log.Fatalf("hifi-watch: %v", err)
		}
		fmt.Print(m.Render())

	case *once:
		// Collect one interval's worth of replay + live events, then
		// render a single frame.
		cctx, cancel := context.WithTimeout(ctx, *interval)
		_ = watch.FollowSSE(cctx, source, apply)
		cancel()
		mu.Lock()
		fmt.Print(m.Render())
		mu.Unlock()

	default:
		errc := make(chan error, 1)
		go func() {
			if watch.IsURL(source) {
				errc <- watch.FollowSSE(ctx, source, apply)
				return
			}
			errc <- watch.TailFile(ctx, source,
				func(h events.Header) { mu.Lock(); m.SetTool(h.Tool); mu.Unlock() },
				apply)
		}()
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		for {
			mu.Lock()
			frame := m.Render()
			mu.Unlock()
			// Home the cursor and clear below, so short frames do not
			// leave stale lines behind.
			fmt.Print("\x1b[H\x1b[2J" + frame)
			select {
			case <-ctx.Done():
				fmt.Println()
				return
			case err := <-errc:
				if err != nil && ctx.Err() == nil {
					log.Fatalf("hifi-watch: %v", err)
				}
				fmt.Println()
				return
			case <-tick.C:
			}
		}
	}
}
