// Command hifi-watch renders a live terminal dashboard from the
// structured event stream (hifi_events_v1): sweep progress, per-worker
// utilization, cache hit rate, open fault windows, retry/timeout
// counts, and an ETA. It consumes the SSE /events route of a running
// hifi-* process (started with -pprof), an NDJSON event log written
// with -events-out, or — in client mode — one job's stream on a
// hifi-serve daemon.
//
// Usage:
//
//	hifi-watch http://localhost:6060/events     # live, attached to a run
//	hifi-watch events.ndjson                    # live, tailing a log file
//	hifi-watch -once events.ndjson              # one frame, then exit
//	hifi-watch -server http://localhost:8777 -job j0001   # follow a serve job
//
// In client mode the dashboard follows the job until its terminal
// event; if the server's SSE replay ring has already dropped events
// (detected by a sequence-number gap), it falls back to polling
// GET /v1/jobs/{id} and says so in the frame. When the source is a
// hifi-serve daemon (client mode, or its /events URL), the dashboard
// also polls GET /slo and renders the burn-rate panel. In live mode
// the screen redraws every -interval; -once renders a single frame and
// exits 0, which is what CI's smoke jobs use. See docs/events.md and
// docs/serve.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/serve"
	"racetrack/hifi/internal/telemetry/events"
	"racetrack/hifi/internal/telemetry/log"
	"racetrack/hifi/internal/telemetry/slo"
	"racetrack/hifi/internal/watch"
)

func main() {
	var (
		once     = flag.Bool("once", false, "render one frame and exit (CI / snapshot mode)")
		interval = flag.Duration("interval", time.Second, "live-mode redraw period (and the -once collection window for SSE sources)")
		server   = flag.String("server", "", "hifi-serve base URL for client mode (use with -job)")
		jobID    = flag.String("job", "", "job ID on -server to follow")
		verbose  = flag.Bool("v", false, "debug logging (overrides HIFI_LOG)")
		quiet    = flag.Bool("q", false, "errors only (overrides HIFI_LOG)")
	)
	flag.Parse()
	switch {
	case *quiet:
		log.SetLevel(log.Error)
	case *verbose:
		log.SetLevel(log.Debug)
	}
	jobMode := *server != "" || *jobID != ""
	if jobMode && (*server == "" || *jobID == "") {
		log.Errorf("hifi-watch: -server and -job go together")
		os.Exit(2)
	}
	if jobMode != (flag.NArg() == 0) {
		log.Errorf("hifi-watch: need exactly one source: an /events URL, an NDJSON file, or -server/-job")
		os.Exit(2)
	}

	ctx, stop := cliutil.SignalContext(context.Background(), "hifi-watch")
	defer stop()

	var mu sync.Mutex
	m := watch.NewModel()
	apply := func(e events.Event) { mu.Lock(); m.Apply(e); mu.Unlock() }
	applyStatus := func(st serve.JobStatus) { mu.Lock(); m.ApplyStatus(st); mu.Unlock() }
	applySLO := func(rep slo.Report) { mu.Lock(); m.ApplySLO(rep); mu.Unlock() }

	// The SLO panel rides along whenever the source is a hifi-serve
	// daemon: client mode knows the base URL outright, and a daemon
	// /events URL yields one. Other sources (files, per-run SSE routes)
	// have no /slo and no panel.
	sloServer := *server
	if !jobMode && flag.NArg() == 1 {
		if base, ok := watch.ServerFromEventsURL(flag.Arg(0)); ok {
			sloServer = base
		}
	}

	// followJob streams the job and degrades to polling on a replay gap.
	followJob := func(fctx context.Context) error {
		err := watch.FollowJob(fctx, *server, *jobID, apply)
		if errors.Is(err, watch.ErrReplayGap) {
			log.Infof("hifi-watch: %v", err)
			err = watch.PollJob(fctx, *server, *jobID, *interval, applyStatus)
		}
		return err
	}

	switch {
	case *once && !jobMode && !watch.IsURL(flag.Arg(0)):
		if err := watch.ReadFileInto(m, flag.Arg(0)); err != nil {
			log.Fatalf("hifi-watch: %v", err)
		}
		fmt.Print(m.Render())

	case *once:
		// Collect one interval's worth of replay + live events (less if
		// the job finishes first), then render a single frame.
		cctx, cancel := context.WithTimeout(ctx, *interval)
		if sloServer != "" {
			if rep, err := watch.FetchSLO(cctx, sloServer); err == nil {
				applySLO(rep)
			}
		}
		if jobMode {
			_ = followJob(cctx)
		} else {
			_ = watch.FollowSSE(cctx, flag.Arg(0), apply)
		}
		cancel()
		mu.Lock()
		fmt.Print(m.Render())
		mu.Unlock()

	default:
		if sloServer != "" {
			go watch.PollSLO(ctx, sloServer, *interval, applySLO)
		}
		errc := make(chan error, 1)
		go func() {
			switch {
			case jobMode:
				errc <- followJob(ctx)
			case watch.IsURL(flag.Arg(0)):
				errc <- watch.FollowSSE(ctx, flag.Arg(0), apply)
			default:
				errc <- watch.TailFile(ctx, flag.Arg(0),
					func(h events.Header) { mu.Lock(); m.SetTool(h.Tool); mu.Unlock() },
					apply)
			}
		}()
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		frame := func() {
			mu.Lock()
			f := m.Render()
			mu.Unlock()
			// Home the cursor and clear below, so short frames do not
			// leave stale lines behind.
			fmt.Print("\x1b[H\x1b[2J" + f)
		}
		for {
			frame()
			select {
			case <-ctx.Done():
				fmt.Println()
				return
			case err := <-errc:
				// Render what arrived since the last tick (the terminal
				// event, usually) before exiting.
				frame()
				if err != nil && ctx.Err() == nil {
					log.Fatalf("hifi-watch: %v", err)
				}
				fmt.Println()
				return
			case <-tick.C:
			}
		}
	}
}
