// Command hifi-serve is the multi-tenant sweep daemon: a long-running
// HTTP/JSON service that accepts experiment sweep specs, runs them on
// the parallel engine over one shared content-addressed result cache,
// and streams per-job lifecycle events over SSE.
//
//	hifi-serve -listen localhost:8777
//	curl -s -X POST localhost:8777/v1/jobs -d '{"run":["table3"],"scaled":true}'
//	curl -N localhost:8777/v1/jobs/j0001/events
//	hifi-watch -server http://localhost:8777 -job j0001
//
// Identical specs dedup across clients: a spec equal to one already
// queued or running coalesces onto that job, and a spec resubmitted
// after completion re-runs through the shared cache and executes
// nothing. Admission control is a bounded queue (429 + Retry-After)
// plus optional per-client token buckets (-rate/-burst, keyed by
// Authorization: Bearer / X-API-Key / remote address). On SIGINT or
// SIGTERM the daemon drains: it stops admitting, journals still-queued
// specs for -resume, and lets running jobs finish (bounded by
// -drain-timeout). See docs/serve.md.
package main

import (
	"context"
	"flag"
	"io"
	"net/http"
	"os"
	"time"

	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/serve"
	"racetrack/hifi/internal/telemetry/log"
)

func main() {
	var (
		listen       = flag.String("listen", "localhost:8777", "HTTP listen address for the job API")
		cacheDir     = flag.String("cache-dir", ".hifi-serve-cache", "shared result-cache directory (\"\" disables caching and cross-client reuse)")
		cacheMax     = flag.Int64("cache-max-bytes", 0, "result-cache size budget; least-recently-accessed objects are evicted above it (0 = unlimited)")
		version      = flag.String("cache-version", "", "override the cache code-version tag (default: built-in engine version)")
		workers      = flag.Int("workers", 0, "engine worker-pool width per job (0 = all cores)")
		runners      = flag.Int("runners", 2, "jobs allowed to run concurrently")
		queueCap     = flag.Int("queue", 16, "jobs accepted but not yet running before submissions get 429")
		rate         = flag.Float64("rate", 0, "per-client submissions per second (0 disables quotas)")
		burst        = flag.Int("burst", 4, "per-client token-bucket size")
		requireToken = flag.Bool("require-token", false, "reject submissions without Authorization: Bearer or X-API-Key")
		maxAccesses  = flag.Int("max-accesses", 0, "reject specs asking for more than this many accesses per core (0 = unbounded)")
		retries      = flag.Int("retries", 0, "engine retries per failed experiment job")
		jobTimeout   = flag.Duration("job-timeout", 0, "engine per-job timeout (0 = none)")
		resume       = flag.Bool("resume", false, "recover jobs from the crash-safe index (completed jobs restored, interrupted jobs re-queued) and re-admit drain-journaled specs before serving")
		drainTO      = flag.Duration("drain-timeout", time.Minute, "how long a shutdown waits for running jobs before canceling them")
		accessLog    = flag.String("access-log", "-", "hifi_access_v1 NDJSON access-log destination: \"-\" = stderr, \"\" disables, else a file path (appended)")
		traceSeed    = flag.Uint64("trace-seed", 0, "seed for minted trace IDs (0 = unpredictable; fixed seeds make correlation IDs reproducible)")
	)
	obs := cliutil.NewObs("hifi-serve")
	obs.EnableMetrics() // /metrics must work without -metrics-out
	obs.EnableEvents()  // /events and per-job SSE need the bus
	flag.Parse()
	_ = obs.Start()

	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("hifi-serve: -access-log: %v", err)
		}
		defer func() { _ = f.Close() }()
		accessW = f
	}

	srv := serve.New(serve.Options{
		Workers:       *workers,
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMax,
		Version:       *version,
		Runners:       *runners,
		Queue:         *queueCap,
		Rate:          *rate,
		Burst:         *burst,
		RequireToken:  *requireToken,
		MaxAccesses:   *maxAccesses,
		Retries:       *retries,
		JobTimeout:    *jobTimeout,
		Metrics:       obs.Reg,
		Events:        obs.Events,
		AccessLog:     accessW,
		TraceSeed:     *traceSeed,
	})
	if *resume {
		n, err := srv.Resume()
		if err != nil {
			log.Fatalf("hifi-serve: -resume: %v", err)
		}
		if n > 0 {
			log.Infof("hifi-serve: %d recovered job(s) re-queued for execution", n)
		}
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Infof("hifi-serve: job API on http://%s/v1/jobs (cache %q, %d runner(s), queue %d)",
		*listen, *cacheDir, *runners, *queueCap)

	ctx, stop := cliutil.SignalContext(context.Background(), "hifi-serve")
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("hifi-serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting and journal the queue first (new
	// submissions get 503 while in-flight jobs finish), then close the
	// HTTP server outright — SSE streams never go idle, so a polite
	// Shutdown would always ride out the full timeout.
	shCtx, shCancel := context.WithTimeout(context.Background(), *drainTO)
	defer shCancel()
	journaled, err := srv.Drain(shCtx)
	if err != nil {
		log.Errorf("hifi-serve: drain: %v", err)
	}
	if err := httpSrv.Close(); err != nil {
		log.Errorf("hifi-serve: http close: %v", err)
	}
	if journaled > 0 {
		log.Infof("hifi-serve: %d spec(s) journaled; restart with -resume to run them", journaled)
	}
	if err := obs.Finish(); err != nil {
		log.Fatalf("hifi-serve: %v", err)
	}
}
