// Command hifi-experiments regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows or series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	hifi-experiments                 # run everything, full size
//	hifi-experiments -run fig11      # one experiment
//	hifi-experiments -scaled         # scaled-down hierarchy (seconds, not minutes)
//	hifi-experiments -csv -run fig16 # machine-readable output
//
// Observability (see docs/observability.md):
//
//	hifi-experiments -run fig14 -metrics-out fig14  # fig14.json + fig14.prom + fig14.manifest.json
//	hifi-experiments -run fig16 -spans-out fig16    # fig16.spans.json + fig16.folded (flamegraph)
//	hifi-experiments -pprof localhost:6060 -v
//
// Parallel sweeps (see docs/engine.md):
//
//	hifi-experiments -jobs 8                        # 8 simulation workers
//	hifi-experiments -cache-dir .hificache          # content-addressed result reuse
//	hifi-experiments -cache-dir .hificache -resume  # continue an interrupted sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"racetrack/hifi/internal/cliutil"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment names (default: all); see -list")
		list     = flag.Bool("list", false, "list experiment names and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir   = flag.String("out", "", "write one CSV file per experiment into this directory")
		scaled   = flag.Bool("scaled", false, "scaled-down hierarchy for quick runs")
		accesses = flag.Int("accesses", 0, "trace length per core (0 = default)")
		seed     = flag.Uint64("seed", 1, "trace seed")
		trials   = flag.Int("mc-trials", 0, "Monte-Carlo trials for fig4 (0 = default)")
	)
	obs := cliutil.NewObs("hifi-experiments")
	engFlags := cliutil.NewEngineFlags()
	faultFlags := cliutil.NewFaultFlags()
	flag.Parse()

	if *list {
		for _, k := range experiments.Order() {
			fmt.Println(k)
		}
		return
	}

	keys, unknown := resolveKeys(*run)
	if len(unknown) > 0 {
		// Validate the whole selection before running anything: a typo at
		// the end of a multi-hour sweep must fail in the first second.
		log.Errorf("hifi-experiments: unknown experiment(s): %s", strings.Join(unknown, ", "))
		log.Errorf("hifi-experiments: valid names: %s", strings.Join(experiments.Order(), " "))
		os.Exit(2)
	}

	ctx := obs.Start()
	// SIGINT/SIGTERM cancels the run context: the engine drains, the loop
	// below stops before its next experiment, and the observability
	// artifacts still flush through obs.Finish.
	ctx, stopSignals := cliutil.SignalContext(ctx, "hifi-experiments")
	defer stopSignals()
	eng, err := engFlags.Build(obs)
	if err != nil {
		log.Fatalf("hifi-experiments: %v", err)
	}

	opts := experiments.DefaultRunOpts()
	if *scaled {
		opts = experiments.QuickRunOpts()
	}
	if *accesses > 0 {
		opts.AccessesPerCore = *accesses
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *trials > 0 {
		opts.MCTrials = *trials
	}
	opts.Metrics = obs.Reg
	opts.Sampler = obs.TS
	opts.Events = obs.Events
	opts.Eng = eng
	plan, err := faultFlags.Plan()
	if err != nil {
		log.Fatalf("hifi-experiments: %v", err)
	}
	opts.FaultPlan = plan
	if plan != nil {
		log.Infof("fault injection active: %d injector(s), plan seed %d", len(plan.Injectors), plan.Seed)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatalf("hifi-experiments: %v", err)
		}
	}
	interrupted := false
	for i, k := range keys {
		if ctx.Err() != nil {
			log.Errorf("hifi-experiments: interrupted; skipping %d remaining experiment(s)", len(keys)-i)
			interrupted = true
			break
		}
		log.Infof("running %s (%d/%d)", k, i+1, len(keys))
		obs.Phase(k)
		// One span per experiment; the generators are keyed closures that
		// capture opts by value, so rebuild the index with this
		// experiment's span context threaded in.
		kctx, ksp := telemetry.StartSpan(ctx, "experiment:"+k)
		opts.Ctx = kctx
		tab, err := experiments.Run(k, opts)
		ksp.End()
		if err != nil {
			if ctx.Err() != nil {
				// The cancellation surfaced inside the experiment; still
				// flush artifacts below.
				log.Errorf("hifi-experiments: %s interrupted; skipping %d remaining experiment(s)", k, len(keys)-i-1)
				interrupted = true
				break
			}
			log.Fatalf("hifi-experiments: %s: %v", k, err)
		}
		if el := ksp.Duration(); el > 0 {
			log.Infof("finished %s in %v", k, el.Round(time.Millisecond))
		} else {
			log.Infof("finished %s", k)
		}
		switch {
		case *outDir != "":
			path := filepath.Join(*outDir, k+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				log.Fatalf("hifi-experiments: %v", err)
			}
			obs.AddOutput(path)
			log.Infof("wrote %s", path)
		case *csv:
			fmt.Print(tab.CSV())
		default:
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(tab.String())
		}
	}

	engFlags.Finish(eng)
	if err := obs.Finish(); err != nil {
		log.Fatalf("hifi-experiments: %v", err)
	}
	if interrupted {
		os.Exit(130)
	}
}

// resolveKeys expands the -run selection, returning the keys to run in
// order and every name that does not exist.
func resolveKeys(run string) (keys, unknown []string) {
	if run == "" {
		return experiments.Order(), nil
	}
	valid := make(map[string]bool)
	for _, k := range experiments.Order() {
		valid[k] = true
	}
	for _, k := range strings.Split(run, ",") {
		k = strings.TrimSpace(strings.ToLower(k))
		if k == "" {
			continue
		}
		if !valid[k] {
			unknown = append(unknown, k)
			continue
		}
		keys = append(keys, k)
	}
	return keys, unknown
}
