// Command hifi-experiments regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows or series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	hifi-experiments                 # run everything, full size
//	hifi-experiments -run fig11      # one experiment
//	hifi-experiments -scaled         # scaled-down hierarchy (seconds, not minutes)
//	hifi-experiments -csv -run fig16 # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"racetrack/hifi/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment names (default: all); see -list")
		list     = flag.Bool("list", false, "list experiment names and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir   = flag.String("out", "", "write one CSV file per experiment into this directory")
		scaled   = flag.Bool("scaled", false, "scaled-down hierarchy for quick runs")
		accesses = flag.Int("accesses", 0, "trace length per core (0 = default)")
		seed     = flag.Uint64("seed", 1, "trace seed")
		trials   = flag.Int("mc-trials", 0, "Monte-Carlo trials for fig4 (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, k := range experiments.Order() {
			fmt.Println(k)
		}
		return
	}

	opts := experiments.DefaultRunOpts()
	if *scaled {
		opts = experiments.QuickRunOpts()
	}
	if *accesses > 0 {
		opts.AccessesPerCore = *accesses
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *trials > 0 {
		opts.MCTrials = *trials
	}

	all := experiments.All(opts)
	var keys []string
	if *run == "" {
		keys = experiments.Order()
	} else {
		for _, k := range strings.Split(*run, ",") {
			k = strings.TrimSpace(strings.ToLower(k))
			if _, ok := all[k]; !ok {
				fmt.Fprintf(os.Stderr, "hifi-experiments: unknown experiment %q (use -list)\n", k)
				os.Exit(2)
			}
			keys = append(keys, k)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hifi-experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for i, k := range keys {
		tab := all[k]()
		switch {
		case *outDir != "":
			path := filepath.Join(*outDir, k+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hifi-experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		case *csv:
			fmt.Print(tab.CSV())
		default:
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(tab.String())
		}
	}
}
