// Command hifi-experiments regenerates the paper's evaluation tables and
// figures. Each experiment prints the same rows or series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	hifi-experiments                 # run everything, full size
//	hifi-experiments -run fig11      # one experiment
//	hifi-experiments -scaled         # scaled-down hierarchy (seconds, not minutes)
//	hifi-experiments -csv -run fig16 # machine-readable output
//
// Observability (see docs/observability.md):
//
//	hifi-experiments -run fig14 -metrics-out fig14  # fig14.json + fig14.prom
//	hifi-experiments -pprof localhost:6060 -v
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/log"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment names (default: all); see -list")
		list     = flag.Bool("list", false, "list experiment names and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outDir   = flag.String("out", "", "write one CSV file per experiment into this directory")
		scaled   = flag.Bool("scaled", false, "scaled-down hierarchy for quick runs")
		accesses = flag.Int("accesses", 0, "trace length per core (0 = default)")
		seed     = flag.Uint64("seed", 1, "trace seed")
		trials   = flag.Int("mc-trials", 0, "Monte-Carlo trials for fig4 (0 = default)")

		metricsOut = flag.String("metrics-out", "", "write aggregated metrics snapshots to <base>.json and <base>.prom")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		verbose    = flag.Bool("v", false, "debug logging (overrides HIFI_LOG)")
		quiet      = flag.Bool("q", false, "errors only (overrides HIFI_LOG)")
	)
	flag.Parse()
	switch {
	case *quiet:
		log.SetLevel(log.Error)
	case *verbose:
		log.SetLevel(log.Debug)
	}

	if *list {
		for _, k := range experiments.Order() {
			fmt.Println(k)
		}
		return
	}

	if *pprofAddr != "" {
		go func() {
			log.Infof("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Errorf("pprof server: %v", err)
			}
		}()
	}

	opts := experiments.DefaultRunOpts()
	if *scaled {
		opts = experiments.QuickRunOpts()
	}
	if *accesses > 0 {
		opts.AccessesPerCore = *accesses
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *trials > 0 {
		opts.MCTrials = *trials
	}
	if *metricsOut != "" {
		opts.Metrics = telemetry.NewRegistry()
	}

	all := experiments.All(opts)
	var keys []string
	if *run == "" {
		keys = experiments.Order()
	} else {
		for _, k := range strings.Split(*run, ",") {
			k = strings.TrimSpace(strings.ToLower(k))
			if _, ok := all[k]; !ok {
				fmt.Fprintf(os.Stderr, "hifi-experiments: unknown experiment %q (use -list)\n", k)
				os.Exit(2)
			}
			keys = append(keys, k)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hifi-experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for i, k := range keys {
		log.Infof("running %s (%d/%d)", k, i+1, len(keys))
		start := time.Now()
		tab := all[k]()
		log.Infof("finished %s in %v", k, time.Since(start).Round(time.Millisecond))
		switch {
		case *outDir != "":
			path := filepath.Join(*outDir, k+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hifi-experiments: %v\n", err)
				os.Exit(1)
			}
			log.Infof("wrote %s", path)
		case *csv:
			fmt.Print(tab.CSV())
		default:
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(tab.String())
		}
	}

	if *metricsOut != "" {
		jsonPath, promPath, err := opts.Metrics.Snapshot().WriteFiles(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hifi-experiments: metrics: %v\n", err)
			os.Exit(1)
		}
		log.Infof("wrote metrics to %s and %s", jsonPath, promPath)
	}
}
