// Package hifi is a library for building and evaluating reliable racetrack
// (domain-wall) memories with position-error protection, reproducing the
// system described in "Hi-fi Playback: Tolerating Position Errors in Shift
// Operations of Racetrack Memory" (ISCA 2015).
//
// Racetrack memory stores bits in magnetic domains along a nanowire and
// accesses them by shifting the tape past fixed ports. Shifts can fail by
// stopping between notches ("stop-in-middle") or by over/under-shooting
// whole steps ("out-of-step"); both silently misalign every subsequent
// access. This package provides:
//
//   - Memory: a functional racetrack memory with fault injection, the
//     sub-threshold shift (STS) technique, position error correction codes
//     (p-ECC / p-ECC-O), and the position-error-aware shift architecture
//     with safe-distance planning.
//   - Reliability: analytic MTTF computation for a configuration.
//   - The full evaluation suite of the paper under internal/experiments,
//     exposed through the cmd/hifi-experiments tool.
//
// A minimal session:
//
//	mem, _ := hifi.New(1<<20, hifi.Config{Scheme: hifi.SchemePECCSAdaptive})
//	mem.WriteLine(0, line)
//	data, _ := mem.ReadLine(0)
//	fmt.Println(mem.Stats())
package hifi

import (
	"fmt"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

// Scheme selects the protection configuration. The zero value selects the
// paper's recommended architecture (p-ECC-S adaptive).
type Scheme int

// Protection schemes, from unprotected to the paper's full architecture.
const (
	// SchemeDefault is the recommended configuration: SECDED p-ECC with
	// the adaptive safe-distance shift architecture.
	SchemeDefault Scheme = iota
	SchemeBaseline
	SchemeSTSOnly
	SchemeSED
	SchemeSECDED
	SchemePECCO
	SchemePECCSWorst
	SchemePECCSAdaptive
)

// internal converts to the controller-level scheme.
func (s Scheme) internal() shiftctrl.Scheme {
	switch s {
	case SchemeBaseline:
		return shiftctrl.Baseline
	case SchemeSTSOnly:
		return shiftctrl.STSOnly
	case SchemeSED:
		return shiftctrl.SED
	case SchemeSECDED:
		return shiftctrl.SECDED
	case SchemePECCO:
		return shiftctrl.PECCO
	case SchemePECCSWorst:
		return shiftctrl.PECCSWorst
	default:
		return shiftctrl.PECCSAdaptive
	}
}

// String implements fmt.Stringer.
func (s Scheme) String() string { return s.internal().String() }

// Config parameterizes a Memory.
type Config struct {
	// Scheme is the protection configuration (default SchemePECCSAdaptive).
	Scheme Scheme
	// LineBytes is the access granularity (default 64).
	LineBytes int
	// SegLen is the domains-per-port segment length (default 8).
	SegLen int
	// DomainsPerStripe is the data length of each stripe (default 64).
	DomainsPerStripe int
	// Strength is the p-ECC correction strength m: the code corrects
	// out-of-step errors up to +-m and detects +-(m+1). 0 means the
	// paper's SECDED configuration (m=1). Ignored by the baseline,
	// STS-only, and SED schemes.
	Strength int
	// ErrorScale multiplies the device error rates; 0 means 1. Values
	// around 1e3-1e5 make errors observable in short functional runs.
	ErrorScale float64
	// Seed makes fault injection reproducible (default 1).
	Seed uint64
	// TargetDUE is the safe-distance MTTF goal in seconds (default 10y).
	TargetDUE float64
	// ClockHz is the controller clock (default 2 GHz).
	ClockHz float64
}

func (c *Config) fillDefaults() {
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.SegLen == 0 {
		c.SegLen = 8
	}
	if c.DomainsPerStripe == 0 {
		c.DomainsPerStripe = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TargetDUE == 0 {
		c.TargetDUE = 10 * mttf.SecondsPerYear
	}
	if c.ClockHz == 0 {
		c.ClockHz = 2e9
	}
	if c.Scheme == SchemeDefault {
		c.Scheme = SchemePECCSAdaptive
	}
}

// Stats summarizes a Memory's activity.
type Stats struct {
	Reads, Writes    uint64
	ShiftOps         uint64
	ShiftCycles      uint64
	Corrections      uint64
	DUEs             uint64
	SilentErrors     uint64 // oracle count of undetected misalignments
	LinesInvalidated uint64 // lines dropped by DUE recovery
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d shiftOps=%d shiftCycles=%d corrections=%d DUEs=%d silent=%d invalidated=%d",
		s.Reads, s.Writes, s.ShiftOps, s.ShiftCycles, s.Corrections, s.DUEs,
		s.SilentErrors, s.LinesInvalidated)
}

// Memory is a functional racetrack memory protected by the configured
// scheme. Lines are stored in stripe groups that shift together (the
// paper's interleaved data mapping); each group is driven through a
// fault-injected tape controller, so position errors, p-ECC detection,
// correction shifts, and DUE invalidations all actually happen.
//
// Memory is not safe for concurrent use; callers serialize access, as a
// cache controller would.
type Memory struct {
	cfg     Config
	groups  []*group
	planner *shiftctrl.Planner
	adapter *shiftctrl.Adapter
	timing  shiftctrl.Timing
	em      errmodel.Model
	stats   Stats
	// lastShift tracks the global cycle of the previous shift for the
	// adaptive scheme's interval counter.
	lastShift uint64
	now       uint64
}

// group is one stripe group: a representative protected tape (all stripes
// of a group shift together and share position fate) plus the group's line
// data. The tape is the standard p-ECC Tape for most schemes and the
// shift-and-write OTape for SchemePECCO.
type group struct {
	tape  shiftctrl.TapeController
	lines [][]byte
	valid []bool
}

// New builds a Memory of the given capacity in bytes.
func New(capacity int64, cfg Config) (*Memory, error) {
	cfg.fillDefaults()
	if capacity <= 0 {
		return nil, fmt.Errorf("hifi: non-positive capacity")
	}
	if cfg.DomainsPerStripe%cfg.SegLen != 0 {
		return nil, fmt.Errorf("hifi: SegLen %d must divide DomainsPerStripe %d", cfg.SegLen, cfg.DomainsPerStripe)
	}
	groupBytes := int64(cfg.DomainsPerStripe) * int64(cfg.LineBytes)
	if capacity%groupBytes != 0 {
		return nil, fmt.Errorf("hifi: capacity %d not a multiple of group size %d", capacity, groupBytes)
	}
	if cfg.Strength == 0 {
		cfg.Strength = 1 // SECDED, the paper's configuration
	}
	if cfg.Strength < 0 || cfg.Strength >= cfg.SegLen-1 {
		if cfg.Scheme != SchemeBaseline && cfg.Scheme != SchemeSTSOnly {
			return nil, fmt.Errorf("hifi: strength %d outside [1, %d) for SegLen %d",
				cfg.Strength, cfg.SegLen-1, cfg.SegLen)
		}
		cfg.Strength = 0
	}
	if cfg.SegLen < 3 && cfg.Scheme != SchemeBaseline && cfg.Scheme != SchemeSTSOnly {
		return nil, fmt.Errorf("hifi: SegLen %d too short for SECDED p-ECC (need >= 3)", cfg.SegLen)
	}

	m := &Memory{cfg: cfg, timing: shiftctrl.DefaultTiming()}
	m.em = errmodel.Model{RateScale: cfg.ErrorScale}
	maxDist := cfg.SegLen - 1
	if maxDist < 1 {
		maxDist = 1
	}
	m.planner = shiftctrl.NewPlanner(m.em, m.timing, maxDist, maxDist)
	m.adapter = shiftctrl.NewAdapter(m.planner, cfg.ClockHz, cfg.TargetDUE, 512)

	rng := sim.NewRNG(cfg.Seed)
	n := int(capacity / groupBytes)
	m.groups = make([]*group, n)
	strength := cfg.Strength
	if strength < 1 {
		// Unprotected modes never decode, but the tape still needs a
		// structurally valid code for its layout: use the strongest one
		// the geometry admits (m=0 for SegLen 2).
		strength = 1
		if cfg.SegLen < 3 {
			strength = 0
		}
	}
	code := pecc.MustNew(strength, cfg.SegLen)
	mode := shiftctrl.CheckCorrect
	switch cfg.Scheme {
	case SchemeBaseline, SchemeSTSOnly:
		mode = shiftctrl.CheckNone
	case SchemeSED:
		mode = shiftctrl.CheckDetect
	}
	ocode := pecc.MustNewO(strength, cfg.SegLen)
	for i := range m.groups {
		var tape shiftctrl.TapeController
		if cfg.Scheme == SchemePECCO {
			tape = shiftctrl.NewOTape(ocode, cfg.DomainsPerStripe, m.em, m.timing, rng.Split())
		} else {
			t := shiftctrl.NewTape(code, cfg.DomainsPerStripe, m.em, m.timing, rng.Split())
			t.Mode = mode
			tape = t
		}
		g := &group{
			tape:  tape,
			lines: make([][]byte, cfg.DomainsPerStripe),
			valid: make([]bool, cfg.DomainsPerStripe),
		}
		for j := range g.lines {
			g.lines[j] = make([]byte, cfg.LineBytes)
		}
		m.groups[i] = g
	}
	return m, nil
}

// Capacity returns the memory size in bytes.
func (m *Memory) Capacity() int64 {
	return int64(len(m.groups)) * int64(m.cfg.DomainsPerStripe) * int64(m.cfg.LineBytes)
}

// LineBytes returns the access granularity.
func (m *Memory) LineBytes() int { return m.cfg.LineBytes }

// locate maps a byte address to its group and domain index.
func (m *Memory) locate(addr int64) (*group, int, error) {
	if addr < 0 || addr >= m.Capacity() {
		return nil, 0, fmt.Errorf("hifi: address %#x out of range [0,%#x)", addr, m.Capacity())
	}
	if addr%int64(m.cfg.LineBytes) != 0 {
		return nil, 0, fmt.Errorf("hifi: address %#x not line-aligned", addr)
	}
	lineIdx := addr / int64(m.cfg.LineBytes)
	g := m.groups[lineIdx/int64(m.cfg.DomainsPerStripe)]
	return g, int(lineIdx % int64(m.cfg.DomainsPerStripe)), nil
}

// align shifts the group's tape so the domain is under the ports, using
// the configured scheme's planning.
func (m *Memory) align(g *group, domain int) error {
	target := domain % m.cfg.SegLen
	dist := target - g.tape.BelievedOffset()
	if dist < 0 {
		dist = -dist
	}
	interval := m.now - m.lastShift
	if dist > 0 {
		m.lastShift = m.now
	}
	seqFor := func(d int) []int {
		return m.planSequence(d, interval)
	}
	before := g.tape.Counters()
	if err := g.tape.Align(target, seqFor); err != nil {
		return err
	}
	after := g.tape.Counters()
	m.stats.ShiftOps += after.Ops - before.Ops
	m.stats.ShiftCycles += after.Cycles - before.Cycles
	m.stats.Corrections += after.Corrections - before.Corrections
	m.stats.SilentErrors += after.SilentBad - before.SilentBad
	m.now += after.Cycles - before.Cycles
	if dues := after.DUEs - before.DUEs; dues > 0 {
		m.stats.DUEs += dues
		// DUE recovery invalidates the group's lines (data must be
		// refetched by the caller, as a cache would).
		for i := range g.valid {
			if g.valid[i] {
				g.valid[i] = false
				m.stats.LinesInvalidated++
			}
		}
	}
	return nil
}

// planSequence mirrors the scheme dispatch of the system simulator.
func (m *Memory) planSequence(dist int, interval uint64) []int {
	if dist == 0 {
		return nil
	}
	switch m.cfg.Scheme {
	case SchemePECCO:
		seq := make([]int, dist)
		for i := range seq {
			seq[i] = 1
		}
		return seq
	case SchemePECCSWorst:
		return shiftctrl.WorstCaseSequence(m.planner, dist, m.cfg.ClockHz/24, m.cfg.TargetDUE, 512)
	case SchemePECCSAdaptive:
		return m.adapter.SequenceFor(dist, interval)
	default:
		return []int{dist}
	}
}

// WriteLine stores data at the line-aligned address.
func (m *Memory) WriteLine(addr int64, data []byte) error {
	g, domain, err := m.locate(addr)
	if err != nil {
		return err
	}
	if len(data) != m.cfg.LineBytes {
		return fmt.Errorf("hifi: line data %d bytes, want %d", len(data), m.cfg.LineBytes)
	}
	if err := m.align(g, domain); err != nil {
		return err
	}
	m.stats.Writes++
	m.now += 24 // LLC-class array access time
	// Writes land on the domain the tape actually exposes: a silent
	// misalignment corrupts the neighbouring line exactly as on hardware.
	eff := m.effectiveDomain(g, domain)
	if eff < 0 || eff >= len(g.lines) {
		return nil // written into guard domains: lost
	}
	copy(g.lines[eff], data)
	g.valid[eff] = true
	return nil
}

// ReadLine returns the data visible at the line-aligned address. When the
// tape is silently misaligned the returned bytes belong to a neighbouring
// line — exactly the silent data corruption the paper's protection exists
// to prevent. The second return value reports whether the line was valid
// (false after a DUE invalidation).
func (m *Memory) ReadLine(addr int64) ([]byte, bool, error) {
	g, domain, err := m.locate(addr)
	if err != nil {
		return nil, false, err
	}
	if err := m.align(g, domain); err != nil {
		return nil, false, err
	}
	m.stats.Reads++
	m.now += 24
	eff := m.effectiveDomain(g, domain)
	out := make([]byte, m.cfg.LineBytes)
	if eff < 0 || eff >= len(g.lines) {
		return out, false, nil // reading guard domains: junk
	}
	copy(out, g.lines[eff])
	return out, g.valid[eff], nil
}

// effectiveDomain maps the requested domain through any silent tape
// misalignment: with the tape over-shifted by e steps, the port exposes
// the domain e positions earlier in the segment direction.
func (m *Memory) effectiveDomain(g *group, domain int) int {
	e := g.tape.TrueOffset() - g.tape.BelievedOffset()
	return domain - e
}

// Stats returns activity counters.
func (m *Memory) Stats() Stats { return m.stats }

// EnergyEstimate summarizes the dynamic energy the memory's activity has
// consumed, in nanojoules, using the Table 4/5 per-operation constants:
// array reads/writes plus shift and p-ECC detection energy. Leakage is
// excluded (it depends on wall-clock time the caller controls).
type EnergyEstimate struct {
	AccessNJ float64 // array read/write energy
	ShiftNJ  float64 // shift drive energy (stage-1 + stage-2)
	DetectNJ float64 // p-ECC phase checks
	TotalNJ  float64
}

// Energy returns the accumulated dynamic-energy estimate.
func (m *Memory) Energy() EnergyEstimate {
	costs := energy.L3(energy.Racetrack)
	sc := energy.DefaultShift()
	var e EnergyEstimate
	e.AccessNJ = float64(m.stats.Reads)*costs.ReadNJ + float64(m.stats.Writes)*costs.WriteNJ
	// Per-operation average: stage-2 plus average step count per op.
	if m.stats.ShiftOps > 0 {
		// ShiftCycles = sum over ops of ceil(0.8n)+3; recover the total
		// step estimate from cycles: steps ~ (cycles - 3*ops)/0.8.
		steps := (float64(m.stats.ShiftCycles) - 3*float64(m.stats.ShiftOps)) / 0.8
		if steps < float64(m.stats.ShiftOps) {
			steps = float64(m.stats.ShiftOps)
		}
		e.ShiftNJ = sc.PerOpNJ*float64(m.stats.ShiftOps) + sc.PerStepNJ*steps
		e.DetectNJ = sc.DetectNJ * float64(m.stats.ShiftOps)
	}
	e.TotalNJ = e.AccessNJ + e.ShiftNJ + e.DetectNJ
	return e
}

// Aligned reports whether every group's tape position matches the
// controller's belief (oracle; for tests and demonstrations).
func (m *Memory) Aligned() bool {
	for _, g := range m.groups {
		if !g.tape.Aligned() {
			return false
		}
	}
	return true
}

// Reliability returns the analytic MTTF estimates for a configuration at a
// given shift intensity (operations per second), using the paper's
// 512-stripe groups and a uniform distribution of access offsets. For the
// safe-distance schemes the per-access shift is split exactly as the
// architecture would split it at that intensity.
func Reliability(s Scheme, segLen int, opsPerSec float64) (sdcMTTF, dueMTTF float64) {
	em := errmodel.Model{}
	is := s.internal()
	target := 10 * mttf.SecondsPerYear
	var planner *shiftctrl.Planner
	if is.UsesSafeDistance() && segLen > 1 {
		planner = shiftctrl.NewPlanner(em, shiftctrl.DefaultTiming(), segLen-1, segLen-1)
	}
	n := float64(segLen)
	var sdc, due float64
	for d := 1; d < segLen; d++ {
		p := 2 * (n - float64(d)) / (n * n)
		seq := []int{d}
		switch {
		case is.StepLimited():
			seq = make([]int, d)
			for i := range seq {
				seq[i] = 1
			}
		case planner != nil:
			seq = shiftctrl.WorstCaseSequence(planner, d, opsPerSec, target, 512)
		}
		for _, step := range seq {
			sd, du := is.FailureRates(em, step)
			sdc += p * sd * 512
			due += p * du * 512
		}
	}
	return mttf.FromRate(sdc, opsPerSec), mttf.FromRate(due, opsPerSec)
}

// YearsMTTF converts seconds to years (re-exported convenience).
func YearsMTTF(seconds float64) float64 { return mttf.Years(seconds) }

// Bit re-exports the tri-state domain value for advanced users working
// with internal tape state via examples.
type Bit = stripe.Bit

// Tri-state bit values.
const (
	Bit0        = stripe.Zero
	Bit1        = stripe.One
	BitUnknown  = stripe.Unknown
	DefaultLine = 64
)
