package hifi

// Integration tests: end-to-end scenarios that cross module boundaries —
// the public Memory over both tape mechanisms, scheme-vs-scheme reliability
// under identical injected faults, the experiments pipeline, and the
// initialization-to-traffic lifecycle.

import (
	"bytes"
	"testing"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

func TestIntegrationPECCOMemoryIsFunctional(t *testing.T) {
	// SchemePECCO now drives real shift-and-write OTapes: every step is
	// one operation.
	mem, err := New(8<<10, Config{Scheme: SchemePECCO, ErrorScale: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte{0x42}, 64)
	if err := mem.WriteLine(7*64, line); err != nil { // offset 7
		t.Fatal(err)
	}
	s := mem.Stats()
	if s.ShiftOps != 7 {
		t.Errorf("p-ECC-O write at offset 7 took %d ops, want 7 (1-step each)", s.ShiftOps)
	}
	got, valid, err := mem.ReadLine(7 * 64)
	if err != nil || !valid || !bytes.Equal(got, line) {
		t.Errorf("round trip failed: %v valid=%v", err, valid)
	}
}

func TestIntegrationSchemesUnderSameFaults(t *testing.T) {
	// The same traffic at the same inflated error rate: protection
	// quality must order baseline < SED < SECDED on silent errors.
	silent := func(s Scheme) uint64 {
		mem, err := New(8<<10, Config{Scheme: s, ErrorScale: 800, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			mem.ReadLine(int64(i%64) * 64)
		}
		return mem.Stats().SilentErrors
	}
	base := silent(SchemeBaseline)
	secded := silent(SchemeSECDED)
	if base == 0 {
		t.Fatal("baseline produced no silent errors at 800x rates")
	}
	if secded >= base {
		t.Errorf("SECDED silent errors (%d) should be far below baseline (%d)", secded, base)
	}
}

func TestIntegrationSEDConvertsSilentToDetected(t *testing.T) {
	mem, err := New(8<<10, Config{Scheme: SchemeSED, ErrorScale: 800, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		mem.ReadLine(int64(i%64) * 64)
	}
	s := mem.Stats()
	if s.DUEs == 0 {
		t.Error("SED should convert position errors into DUEs")
	}
	if s.Corrections != 0 {
		t.Error("SED cannot correct")
	}
}

func TestIntegrationInitializationThenTraffic(t *testing.T) {
	// Full lifecycle: program-and-test initialization of a stripe, then
	// drive the same code through a Tape's decode path.
	code := pecc.SECDED(8)
	lay := stripe.Layout{
		DataLen: 64, SegLen: 8, GuardLeft: 2, GuardRight: 2,
		PECCLen: code.Length() + 6, PECCPorts: code.Window(),
	}
	st := stripe.New(lay.TotalSlots())
	stats, err := pecc.Initialize(code, st, lay, errmodel.Model{}, pecc.DefaultInitConfig(), sim.NewRNG(1))
	if err != nil || !stats.Initialized {
		t.Fatalf("init failed: %v %+v", err, stats)
	}
	// The initialized pattern decodes cleanly at offset 0 through the
	// standard decoder.
	w := make([]stripe.Bit, code.Window())
	for j := range w {
		w[j] = st.Peek(lay.PECCSlot(j))
	}
	if res := code.Decode(0, w); res.Detected {
		t.Errorf("freshly initialized code does not decode: %+v", res)
	}
}

func TestIntegrationReliabilityConsistency(t *testing.T) {
	// The facade's analytic Reliability and the shiftctrl failure
	// classification must agree on scheme ordering at every intensity.
	for _, ops := range []float64{1e6, 5e7, 3e8} {
		_, dueSECDED := Reliability(SchemeSECDED, 8, ops)
		_, dueWorst := Reliability(SchemePECCSWorst, 8, ops)
		_, duePECCO := Reliability(SchemePECCO, 8, ops)
		if !(duePECCO >= dueWorst && dueWorst >= dueSECDED) {
			t.Errorf("intensity %g: DUE ordering violated: pecco %g, worst %g, secded %g",
				ops, duePECCO, dueWorst, dueSECDED)
		}
	}
}

func TestIntegrationReliabilityMeetsTargets(t *testing.T) {
	// Paper headline: the full architecture meets 1000-year SDC and
	// 10-year DUE at realistic LLC intensity.
	goals := mttf.IBMTargets()
	sdc, due := Reliability(SchemePECCSWorst, 8, 50e6)
	if !goals.Meets(sdc, due) {
		t.Errorf("p-ECC-S worst misses targets: SDC %g y, DUE %g y",
			mttf.Years(sdc), mttf.Years(due))
	}
}

func TestIntegrationExperimentsPipeline(t *testing.T) {
	// Every analytic experiment must render non-empty text and CSV.
	analytic := []string{"fig1", "table2", "fig7", "table3", "fig12",
		"fig13", "fig15", "table5", "abl-strength", "abl-becc", "abl-sts",
		"abl-headpolicy", "abl-interleave", "abl-area"}
	all := experiments.All(experiments.QuickRunOpts())
	for _, k := range analytic {
		tab := all[k]()
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", k)
		}
		if len(tab.String()) == 0 || len(tab.CSV()) == 0 {
			t.Errorf("%s: empty rendering", k)
		}
	}
}

func TestIntegrationTapeVsOTapeAgreement(t *testing.T) {
	// Both tape mechanisms must preserve data across identical access
	// sequences at negligible error rates.
	em := errmodel.Model{RateScale: 1e-9}
	tm := shiftctrl.DefaultTiming()
	tape := shiftctrl.NewTape(pecc.SECDED(8), 64, em, tm, sim.NewRNG(1))
	otape := shiftctrl.NewOTape(pecc.MustNewO(1, 8), 64, em, tm, sim.NewRNG(1))

	tape.Align(0, nil)
	otape.Align(0, nil)
	for seg := 0; seg < 8; seg++ {
		v := stripe.FromBool(seg%3 == 0)
		if err := tape.WriteData(seg*8, v); err != nil {
			t.Fatal(err)
		}
		if err := otape.WriteData(seg*8, v); err != nil {
			t.Fatal(err)
		}
	}
	seq := []int{3, 7, 1, 5, 0, 2, 6, 4, 0}
	for _, target := range seq {
		if err := tape.Align(target, nil); err != nil {
			t.Fatal(err)
		}
		if err := otape.Align(target, nil); err != nil {
			t.Fatal(err)
		}
	}
	tape.Align(0, nil)
	otape.Align(0, nil)
	for seg := 0; seg < 8; seg++ {
		want := stripe.FromBool(seg%3 == 0)
		a, err1 := tape.ReadData(seg * 8)
		b, err2 := otape.ReadData(seg * 8)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != want || b != want {
			t.Errorf("segment %d: tape=%v otape=%v want %v", seg, a, b, want)
		}
	}
	// p-ECC-O pays one op per step; the standard tape one op per move.
	if otape.Counters().Ops <= tape.Counters().Ops {
		t.Error("OTape should issue more operations for the same moves")
	}
}

func TestIntegrationMemoryAcrossGroups(t *testing.T) {
	// Traffic spanning multiple stripe groups keeps per-group head state
	// independent.
	mem, err := New(16<<10, Config{ErrorScale: 1e-9}) // 4 groups
	if err != nil {
		t.Fatal(err)
	}
	groupBytes := int64(64 * 64)
	for g := int64(0); g < 4; g++ {
		line := bytes.Repeat([]byte{byte(g + 1)}, 64)
		// Different offsets in different groups.
		if err := mem.WriteLine(g*groupBytes+g*64, line); err != nil {
			t.Fatal(err)
		}
	}
	for g := int64(3); g >= 0; g-- {
		got, valid, err := mem.ReadLine(g*groupBytes + g*64)
		if err != nil || !valid {
			t.Fatalf("group %d: %v valid=%v", g, err, valid)
		}
		if got[0] != byte(g+1) {
			t.Errorf("group %d returned %#x", g, got[0])
		}
	}
}
