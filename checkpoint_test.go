package hifi

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	mem, err := New(16<<10, Config{ErrorScale: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		line := bytes.Repeat([]byte{byte(i + 1)}, 64)
		if err := mem.WriteLine(i*64, line); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := mem.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := New(16<<10, Config{ErrorScale: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		got, valid, err := restored.ReadLine(i * 64)
		if err != nil || !valid {
			t.Fatalf("line %d: %v valid=%v", i, err, valid)
		}
		if got[0] != byte(i+1) {
			t.Errorf("line %d = %#x", i, got[0])
		}
	}
	// Unwritten lines stay invalid.
	if _, valid, _ := restored.ReadLine(20 * 64); valid {
		t.Error("unwritten line restored as valid")
	}
}

func TestCheckpointGeometryMismatch(t *testing.T) {
	small, _ := New(8<<10, Config{})
	big, _ := New(16<<10, Config{})
	var buf bytes.Buffer
	if err := small.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := big.Load(&buf); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	mem, _ := New(8<<10, Config{})
	cases := []string{"", "XXXX", "HFCK", "HFCK\x02\x00\x00\x00\x00\x00\x00\x00"}
	for i, c := range cases {
		if err := mem.Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCheckpointTruncated(t *testing.T) {
	mem, _ := New(8<<10, Config{})
	var buf bytes.Buffer
	if err := mem.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if err := mem.Load(bytes.NewReader(cut)); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}
