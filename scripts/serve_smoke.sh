#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke for the hifi-serve daemon (docs/serve.md).
#
# Boots a real daemon on a scratch cache, then walks the whole client
# contract over HTTP:
#
#   1. POST a small scaled sweep and poll /v1/jobs/{id} to completion.
#      The submit response must carry X-Request-Id and traceparent
#      headers, and the job status must echo the same trace_id.
#   2. Render the job with `hifi-watch -once -server ... -job ...`;
#      the frame must include the daemon's SLO burn-rate panel.
#   3. GET /v1/jobs/{id}/tables and diff it byte-for-byte against the
#      same sweep run directly through hifi-experiments.
#   4. Resubmit the identical spec: the second job must report
#      "executed": 0 (every simulation served from the shared cache),
#      and /metrics must show hifi_engine_ cache hits plus both
#      submissions.
#   5. Check the observability plane: the hifi_access_v1 access log
#      carries the submit's trace_id, /slo reports hifi_slo_v1 burn
#      rates, and the burn gauges appear on /metrics.
#   6. SIGTERM the daemon and require a clean drain (exit 0).
#
# Used by `make serve-smoke` and CI's serve job. Needs curl; everything
# else is the repo's own binaries.
set -euo pipefail

GO=${GO:-go}
ADDR=${ADDR:-localhost:8791}
BASE="http://$ADDR"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hifi-serve-smoke.XXXXXX")

SERVE_PID=""
cleanup() {
	if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
		kill -TERM "$SERVE_PID" 2>/dev/null || true
		wait "$SERVE_PID" 2>/dev/null || true
	fi
	rm -rf "$WORK"
}
trap cleanup EXIT

# jget FILE KEY — pull a scalar out of the daemon's indented JSON
# without depending on jq.
jget() {
	sed -n 's/^ *"'"$2"'": *"\{0,1\}\([^",]*\)"\{0,1\},\{0,1\}$/\1/p' "$1" | head -1
}

echo "== build"
$GO build -o "$WORK/hifi-serve" ./cmd/hifi-serve
$GO build -o "$WORK/hifi-experiments" ./cmd/hifi-experiments
$GO build -o "$WORK/hifi-watch" ./cmd/hifi-watch

echo "== start daemon on $ADDR"
"$WORK/hifi-serve" -listen "$ADDR" -cache-dir "$WORK/cache" -runners 2 \
	-access-log "$WORK/access.ndjson" \
	>"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for i in $(seq 1 50); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
		break
	fi
	if [[ "$i" == 50 ]]; then
		echo "daemon never became healthy" >&2
		cat "$WORK/serve.log" >&2
		exit 1
	fi
	sleep 0.2
done

SPEC='{"run":["fig14"],"scaled":true,"accesses":1000}'

# wait_done JOB — poll the status route until the job is terminal.
wait_done() {
	for i in $(seq 1 300); do
		curl -fsS "$BASE/v1/jobs/$1" >"$WORK/job.json"
		case "$(jget "$WORK/job.json" state)" in
		done) return 0 ;;
		failed | canceled)
			echo "job $1 ended $(jget "$WORK/job.json" state): $(jget "$WORK/job.json" error)" >&2
			return 1
			;;
		esac
		sleep 0.2
	done
	echo "job $1 never finished" >&2
	return 1
}

echo "== submit sweep"
curl -fsS -D "$WORK/submit1.hdr" -X POST -H 'Content-Type: application/json' \
	-d "$SPEC" "$BASE/v1/jobs" >"$WORK/submit1.json"
JOB1=$(jget "$WORK/submit1.json" id)
test -n "$JOB1"

echo "== trace headers on the submit response"
TRACE=$(tr -d '\r' <"$WORK/submit1.hdr" | sed -n 's/^[Xx]-[Rr]equest-[Ii]d: //p' | head -1)
echo "$TRACE" | grep -qE '^[0-9a-f]{32}$'
tr -d '\r' <"$WORK/submit1.hdr" | grep -qiE "^traceparent: 00-$TRACE-[0-9a-f]{16}-[0-9a-f]{2}$"

wait_done "$JOB1"
test "$(jget "$WORK/job.json" trace_id)" = "$TRACE"

echo "== hifi-watch client mode"
"$WORK/hifi-watch" -once -server "$BASE" -job "$JOB1" >"$WORK/frame.txt"
grep -q "$JOB1" "$WORK/frame.txt"
grep -q 'done' "$WORK/frame.txt"
grep -q '^slo' "$WORK/frame.txt"
grep -q 'availability' "$WORK/frame.txt"

echo "== tables byte-identical to a direct run"
curl -fsS "$BASE/v1/jobs/$JOB1/tables" >"$WORK/served.txt"
"$WORK/hifi-experiments" -run fig14 -scaled -accesses 1000 -q >"$WORK/direct.txt"
diff -u "$WORK/direct.txt" "$WORK/served.txt"

echo "== identical resubmission runs zero new simulations"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" \
	"$BASE/v1/jobs" >"$WORK/submit2.json"
JOB2=$(jget "$WORK/submit2.json" id)
test -n "$JOB2" && test "$JOB2" != "$JOB1"
wait_done "$JOB2"
grep -q '"executed": 0' "$WORK/job.json"
grep -qE '"cache_hits": [1-9]' "$WORK/job.json"

curl -fsS "$BASE/metrics" >"$WORK/metrics.txt"
grep -qE '^hifi_engine_cache_hits_total [1-9]' "$WORK/metrics.txt"
grep -qE '^hifi_serve_jobs_submitted_total 2$' "$WORK/metrics.txt"
grep -qE '^hifi_serve_jobs_completed_total 2$' "$WORK/metrics.txt"

echo "== access log carries the trace"
head -1 "$WORK/access.ndjson" | grep -q hifi_access_v1
grep -q '"route":"POST /v1/jobs"' "$WORK/access.ndjson"
grep -q "\"trace_id\":\"$TRACE\"" "$WORK/access.ndjson"

echo "== slo plane"
curl -fsS "$BASE/slo" >"$WORK/slo.json"
grep -q '"schema": "hifi_slo_v1"' "$WORK/slo.json"
grep -q '"name": "availability"' "$WORK/slo.json"
grep -q '"name": "submit_latency"' "$WORK/slo.json"
grep -q '"name": "job_completion"' "$WORK/slo.json"
grep -qE '^hifi_slo_burn_rate\{slo="availability",window="5m"\} ' "$WORK/metrics.txt"
grep -qE '^hifi_serve_http_requests_total\{route="POST /v1/jobs",code="202"\} 2$' "$WORK/metrics.txt"

echo "== graceful drain on SIGTERM"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "serve smoke OK"
