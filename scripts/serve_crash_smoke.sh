#!/usr/bin/env bash
# serve_crash_smoke.sh — crash-recovery smoke for hifi-serve's job index
# (docs/serve.md, "Restart recovery & the job index").
#
# Proves the kill -9 story end to end with real processes:
#
#   1. Boot a daemon on a scratch cache, run one sweep to completion,
#      then submit a second (bigger) sweep and SIGKILL the daemon while
#      it is mid-job — no drain, no journal, no terminal index record.
#   2. Restart against the same cache dir with -resume. The completed
#      job must answer GET /v1/jobs/{id} with state=done and
#      restored=true, and its tables must re-serve byte-identical to a
#      direct hifi-experiments run with "executed": 0 (everything from
#      the shared content-addressed cache).
#   3. The killed-mid-run job must come back under its ORIGINAL id,
#      re-queued, and run to completion.
#   4. /metrics must show the index replay/append counters, and the
#      index file itself must start with the hifi_serve_index_v1 header.
#
# Used by `make serve-crash-smoke` and CI's serve job. Needs curl.
set -euo pipefail

GO=${GO:-go}
ADDR=${ADDR:-localhost:8793}
BASE="http://$ADDR"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hifi-serve-crash.XXXXXX")

SERVE_PID=""
cleanup() {
	if [[ -n "$SERVE_PID" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
		kill -KILL "$SERVE_PID" 2>/dev/null || true
		wait "$SERVE_PID" 2>/dev/null || true
	fi
	rm -rf "$WORK"
}
trap cleanup EXIT

jget() {
	sed -n 's/^ *"'"$2"'": *"\{0,1\}\([^",]*\)"\{0,1\},\{0,1\}$/\1/p' "$1" | head -1
}

wait_healthy() {
	for i in $(seq 1 50); do
		if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.2
	done
	echo "daemon never became healthy" >&2
	cat "$WORK/serve.log" >&2
	return 1
}

wait_done() {
	for i in $(seq 1 300); do
		curl -fsS "$BASE/v1/jobs/$1" >"$WORK/job.json"
		case "$(jget "$WORK/job.json" state)" in
		done) return 0 ;;
		failed | canceled)
			echo "job $1 ended $(jget "$WORK/job.json" state): $(jget "$WORK/job.json" error)" >&2
			return 1
			;;
		esac
		sleep 0.2
	done
	echo "job $1 never finished" >&2
	return 1
}

echo "== build"
$GO build -o "$WORK/hifi-serve" ./cmd/hifi-serve
$GO build -o "$WORK/hifi-experiments" ./cmd/hifi-experiments

echo "== start daemon on $ADDR"
"$WORK/hifi-serve" -listen "$ADDR" -cache-dir "$WORK/cache" -runners 1 \
	-access-log "" >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
wait_healthy

echo "== run one sweep to completion"
SPEC1='{"run":["fig14"],"scaled":true,"accesses":1000}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC1" \
	"$BASE/v1/jobs" >"$WORK/submit1.json"
JOB1=$(jget "$WORK/submit1.json" id)
test -n "$JOB1"
wait_done "$JOB1"
curl -fsS "$BASE/v1/jobs/$JOB1/tables" >"$WORK/tables_before.txt"

echo "== submit a bigger sweep and SIGKILL the daemon mid-job"
# fig14 actually simulates (table3 is analytic and returns in
# milliseconds); 30k accesses is ~2s of sweep — plenty to kill into.
SPEC2='{"run":["fig14"],"scaled":true,"accesses":30000}'
curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC2" \
	"$BASE/v1/jobs" >"$WORK/submit2.json"
JOB2=$(jget "$WORK/submit2.json" id)
test -n "$JOB2"
# Wait until the runner has the job (the index has its started record),
# then kill -9 while it is mid-sweep: no drain, no journal — only the
# index survives. The kill MUST land while running, or the test would
# silently degrade to the restored-done path.
for i in $(seq 1 100); do
	curl -fsS "$BASE/v1/jobs/$JOB2" >"$WORK/job2.json"
	if [[ "$(jget "$WORK/job2.json" state)" == "running" ]]; then break; fi
	sleep 0.1
done
if [[ "$(jget "$WORK/job2.json" state)" != "running" ]]; then
	echo "job $JOB2 never reached running (state: $(jget "$WORK/job2.json" state)); cannot test a mid-job kill" >&2
	exit 1
fi
kill -KILL "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

test -f "$WORK/cache/serve.index.ndjson"
head -1 "$WORK/cache/serve.index.ndjson" | grep -q hifi_serve_index_v1

echo "== restart with -resume against the same cache dir"
"$WORK/hifi-serve" -listen "$ADDR" -cache-dir "$WORK/cache" -runners 1 \
	-resume -access-log "" >"$WORK/serve2.log" 2>&1 &
SERVE_PID=$!
wait_healthy

echo "== completed job restored across the crash"
curl -fsS "$BASE/v1/jobs/$JOB1" >"$WORK/restored.json"
test "$(jget "$WORK/restored.json" state)" = "done"
grep -q '"restored": true' "$WORK/restored.json"

echo "== restored tables byte-identical, zero re-execution"
curl -fsS "$BASE/v1/jobs/$JOB1/tables" >"$WORK/tables_after.txt"
diff -u "$WORK/tables_before.txt" "$WORK/tables_after.txt"
"$WORK/hifi-experiments" -run fig14 -scaled -accesses 1000 -q >"$WORK/direct.txt"
diff -u "$WORK/direct.txt" "$WORK/tables_after.txt"
curl -fsS "$BASE/v1/jobs/$JOB1" >"$WORK/restored2.json"
grep -q '"executed": 0' "$WORK/restored2.json"

echo "== interrupted job re-queued under its original id and finishes"
wait_done "$JOB2"

echo "== index metrics on /metrics"
curl -fsS "$BASE/metrics" >"$WORK/metrics.txt"
grep -qE '^hifi_serve_index_replayed_total [1-9]' "$WORK/metrics.txt"
grep -qE '^hifi_serve_index_records_total [1-9]' "$WORK/metrics.txt"

echo "== clean shutdown of the successor"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""

echo "serve crash smoke OK"
