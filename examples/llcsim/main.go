// llcsim compares LLC technologies on one workload: SRAM, STT-RAM, and
// racetrack memory with and without position-error protection — the
// single-workload version of the paper's Fig. 16-18 comparison.
package main

import (
	"flag"
	"fmt"
	"log"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/memsim"
	"racetrack/hifi/internal/mttf"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/trace"
)

func main() {
	workload := flag.String("workload", "canneal", "workload name")
	accesses := flag.Int("accesses", 150_000, "accesses per core")
	flag.Parse()

	w, err := trace.ByName(*workload)
	if err != nil {
		log.Fatal(err)
	}
	kind := "capacity-insensitive"
	if w.CapacitySensitive {
		kind = "capacity-sensitive"
	}
	fmt.Printf("workload %s (%s), working set %d MB\n\n", w.Name, kind, w.WorkingSetB>>20)

	type sys struct {
		label  string
		tech   energy.Tech
		scheme shiftctrl.Scheme
		ideal  bool
	}
	systems := []sys{
		{"SRAM 4MB", energy.SRAM, shiftctrl.Baseline, false},
		{"STT-RAM 32MB", energy.STTRAM, shiftctrl.Baseline, false},
		{"RM 128MB ideal", energy.Racetrack, shiftctrl.Baseline, true},
		{"RM 128MB unprotected", energy.Racetrack, shiftctrl.Baseline, false},
		{"RM 128MB p-ECC-O", energy.Racetrack, shiftctrl.PECCO, false},
		{"RM 128MB p-ECC-S adaptive", energy.Racetrack, shiftctrl.PECCSAdaptive, false},
	}

	fmt.Printf("%-26s %12s %9s %12s %14s %s\n",
		"system", "time (ms)", "L3 miss", "energy (mJ)", "DUE MTTF", "notes")
	var baseCycles uint64
	for i, s := range systems {
		cfg := memsim.DefaultConfig(s.tech, s.scheme)
		cfg.AccessesPerCore = *accesses
		cfg.Ideal = s.ideal
		r, err := memsim.Run(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseCycles = r.Cycles
		}
		note := fmt.Sprintf("%.2fx vs SRAM", float64(r.Cycles)/float64(baseCycles))
		due := "-"
		if s.tech == energy.Racetrack && !s.ideal {
			if s.scheme == shiftctrl.Baseline {
				due = "n/a (silent)"
			} else {
				due = fmt.Sprintf("%.3g y", mttf.Years(r.Tracker.DUEMTTF()))
			}
		}
		fmt.Printf("%-26s %12.3f %8.1f%% %12.3f %14s %s\n",
			s.label, r.Seconds*1e3, 100*r.L3.MissRate(),
			r.Energy.TotalJ()*1e3, due, note)
	}
}
