// timeseries demonstrates the windowed-metrics sampler and the
// fidelity scorecard from Go code: it runs one workload with the
// registry windowed on the simulated-access clock, prints how the
// shift traffic evolves window by window, then scores a scaled
// experiment sweep against the paper-anchor set — the same machinery
// behind `hifi-sim -timeseries-out` and `hifi-report -fidelity-gate`.
package main

import (
	"flag"
	"fmt"
	"log"

	"racetrack/hifi/internal/energy"
	"racetrack/hifi/internal/experiments"
	"racetrack/hifi/internal/fidelity"
	"racetrack/hifi/internal/memsim"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/telemetry"
	"racetrack/hifi/internal/telemetry/timeseries"
	"racetrack/hifi/internal/trace"
)

func main() {
	workload := flag.String("workload", "canneal", "workload name")
	accesses := flag.Int("accesses", 20_000, "accesses per core")
	every := flag.Int("every", 4096, "window width in simulated accesses")
	flag.Parse()

	w, err := trace.ByName(*workload)
	if err != nil {
		log.Fatal(err)
	}

	// A sampler windows a live registry: each Tick advances the
	// simulated-access clock, and every `every` ticks the counter
	// deltas, gauge values, and histogram summaries since the last cut
	// are recorded as one window. memsim ticks and marks for us.
	reg := telemetry.NewRegistry()
	sampler := timeseries.New(reg, timeseries.Options{Every: *every})

	cfg := memsim.DefaultConfig(energy.Racetrack, shiftctrl.PECCSAdaptive)
	cfg.AccessesPerCore = *accesses
	cfg.Metrics = reg
	cfg.Sampler = sampler
	if _, err := memsim.Run(w, cfg); err != nil {
		log.Fatal(err)
	}

	se := sampler.Export()
	fmt.Printf("%s on the racetrack LLC: %d windows of %d accesses\n\n",
		w.Name, len(se.Windows), se.Every)
	fmt.Printf("%8s  %8s  %10s  %10s  %s\n",
		"window", "ticks", "shifts", "llc-reads", "marks")
	ticks, shifts := se.CounterSeries("hifi_shift_ops_total")
	_, reads := se.CounterSeries(`hifi_cache_hits_total{level="l3"}`)
	for i, win := range se.Windows {
		marks := ""
		for _, m := range win.Marks {
			marks += m + " "
		}
		fmt.Printf("%8d  %8d  %10.0f  %10.0f  %s\n",
			win.Index, ticks[i], shifts[i], reads[i], marks)
	}

	// The same windows drive the charts in `hifi-report -html`; the
	// JSON on disk (WriteFile) is what `/timeseries` serves live.

	// Fidelity: generate two analytic tables and score them against
	// the shipped paper-anchor set. Anchors for tables we did not
	// generate skip; a full sweep (hifi-report) leaves no skips.
	all := experiments.All(experiments.QuickRunOpts())
	tables := map[string]experiments.Table{
		"table2": all["table2"](),
		"table5": all["table5"](),
	}
	sc := fidelity.Evaluate(fidelity.Anchors(), tables)
	fmt.Printf("\nfidelity vs the paper (analytic tables only): %d pass, %d warn, %d fail, %d skipped\n",
		sc.Pass, sc.Warn, sc.Fail, sc.Skip)
	for _, r := range sc.Anchors {
		if r.Status == fidelity.Pass && r.Experiment == "table2" {
			fmt.Printf("  e.g. %s [%s]: measured %g vs published %g\n",
				r.ID, r.Source, r.Measured, r.Want)
			break
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
