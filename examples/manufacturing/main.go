// manufacturing walks through chip bring-up for a racetrack array: the
// §4.3 program-and-test screen applied as a manufacturing BIST, stripe
// sparing for the failures it catches (§4.1: mis-etched stripes "can be
// disabled during chip testing"), and the yield math that sizes the spare
// pool.
package main

import (
	"fmt"

	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/sparing"
)

func main() {
	dm := sparing.DefectModel{DefectProb: 0.02, DefectRateScale: 1e5}
	fmt.Printf("defect model: %.1f%% of stripes mis-etched (%.0fx error rates)\n\n",
		100*dm.DefectProb, dm.DefectRateScale)

	// Screen a 512-stripe group (one line-group of the paper's LLC
	// mapping) with 16 spares.
	code := pecc.SECDED(8)
	arr := sparing.NewArray(code, 64, 512, 16, dm, sim.NewRNG(1))
	rep := arr.RunBIST(dm, 2, sim.NewRNG(2))
	fmt.Println("BIST (2 verification rounds per stripe):")
	fmt.Printf("  tested %d stripes, %d failed, %d remapped to spares\n",
		rep.Tested, rep.Failed, rep.Remapped)
	fmt.Printf("  spares left %d, escapes (oracle) %d, array usable: %v\n\n",
		rep.SparesLeft, rep.Escapes, rep.Usable)

	// Yield vs spare pool size: how many spares does this process need?
	fmt.Println("analytic screen-pass yield vs spare pool (per 512-stripe group):")
	fmt.Printf("  %-8s %s\n", "spares", "yield")
	for _, spares := range []int{0, 4, 8, 12, 16, 24} {
		y := sparing.Yield(512, spares, dm, 0.99)
		bar := ""
		for i := 0; i < int(y*40); i++ {
			bar += "#"
		}
		fmt.Printf("  %-8d %6.2f%%  %s\n", spares, 100*y, bar)
	}

	fmt.Println("\nNote: escaped defects (weakly mis-etched stripes that pass the")
	fmt.Println("screen) surface later as elevated position-error rates — which is")
	fmt.Println("exactly what the run-time p-ECC protection exists to catch.")
}
