// faultcampaign runs a deterministic fault-injection campaign against a
// protected tape: it injects out-of-step drifts of every magnitude and
// direction, at every believed offset, across p-ECC strengths, and tallies
// how the architecture responds (corrected / detected-unrecoverable /
// silent). The resulting matrix is the empirical confirmation of the p-ECC
// coverage guarantees of §4.2.3: correct up to +-m, detect +-(m+1), alias
// (silently) at the cyclic period.
package main

import (
	"fmt"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/shiftctrl"
	"racetrack/hifi/internal/sim"
)

func main() {
	em := errmodel.Model{RateScale: 1e-12} // keep correction shifts clean
	tm := shiftctrl.DefaultTiming()

	fmt.Println("Fault-injection campaign: drift magnitude vs p-ECC strength")
	fmt.Println("cell = response at every believed offset (C=corrected, D=DUE, S=silent alias)")
	fmt.Println()
	fmt.Printf("%-8s", "drift")
	for m := 1; m <= 3; m++ {
		fmt.Printf("  m=%d", m)
	}
	fmt.Println()

	for drift := -6; drift <= 6; drift++ {
		if drift == 0 {
			continue
		}
		fmt.Printf("%+-8d", drift)
		for m := 1; m <= 3; m++ {
			fmt.Printf("  %s  ", campaign(m, drift, em, tm))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Expected from §4.2.3: C for |drift| <= m, D at |drift| = m+1,")
	fmt.Println("and S when the drift aliases the cyclic period 2(m+1) —")
	fmt.Println("which is why |k| >= m+2 error rates must be negligible (Table 2).")
}

// campaign injects the drift at every believed offset and returns the set
// of responses observed (usually one letter; deep drifts near segment
// edges can differ from mid-segment ones because the tape runs off its
// guard region, turning an alias into a detectable corruption).
func campaign(m, drift int, em errmodel.Model, tm shiftctrl.Timing) string {
	seen := map[byte]bool{}
	for offset := 0; offset < 8; offset++ {
		tp := shiftctrl.NewTape(pecc.MustNew(m, 8), 64, em, tm, sim.NewRNG(1))
		if err := tp.Align(offset, nil); err != nil {
			panic(err)
		}
		base := tp.Counters()
		tp.InjectDrift(drift)
		tp.CheckNow()
		after := tp.Counters()
		switch {
		case after.DUEs > base.DUEs:
			// Unrecoverable (possibly after a failed correction attempt).
			seen['D'] = true
		case after.Corrections > base.Corrections && tp.Aligned():
			seen['C'] = true
		default:
			seen['S'] = true
		}
	}
	out := ""
	for _, r := range []byte{'C', 'D', 'S'} {
		if seen[r] {
			out += string(r)
		}
	}
	return out
}
