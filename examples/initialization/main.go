// initialization walks through the paper's §4.3 "program-and-test" p-ECC
// initialization: programming the cyclic code into a freshly fabricated
// stripe and verifying it by shifting it back and forth under fault
// injection, restarting whenever a position error is caught.
package main

import (
	"fmt"
	"log"

	"racetrack/hifi/internal/errmodel"
	"racetrack/hifi/internal/pecc"
	"racetrack/hifi/internal/sim"
	"racetrack/hifi/internal/stripe"
)

func main() {
	code := pecc.SECDED(8)
	lay := stripe.Layout{
		DataLen:    64,
		SegLen:     8,
		GuardLeft:  2,
		GuardRight: 2,
		PECCLen:    code.Length() + 8, // headroom for the verification walk
		PECCPorts:  code.Window(),
	}
	fmt.Printf("SECDED p-ECC for Lseg=8: %d code domains, window of %d ports, period %d\n",
		code.Length(), code.Window(), code.Period())
	fmt.Printf("code pattern: %v\n\n", code.Pattern())

	cfg := pecc.DefaultInitConfig()
	fmt.Printf("expected clean-run latency: %d cycles\n\n", pecc.ExpectedInitCycles(code, lay, cfg))

	// Clean device: one pass suffices.
	st := stripe.New(lay.TotalSlots())
	stats, err := pecc.Initialize(code, st, lay, errmodel.Model{}, cfg, sim.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean device:   %+v\n", stats)

	// A noisy device (error rates inflated 3000x) restarts until the walk
	// survives end to end.
	st = stripe.New(lay.TotalSlots())
	noisy := errmodel.Model{RateScale: 3000}
	cfg.MaxRestarts = 64
	stats, err = pecc.Initialize(code, st, lay, noisy, cfg, sim.NewRNG(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noisy device:   %+v\n", stats)

	// Verify the programmed code sits where the decoder expects it.
	ok := true
	for i := 0; i < code.Length(); i++ {
		if st.Peek(lay.PECCSlot(i)) != code.Bit(i) {
			ok = false
		}
	}
	fmt.Printf("\npattern verified in place: %v\n", ok)
	fmt.Println("\nstripe after initialization (g=guard, P=data port, R=p-ECC port, c=code):")
	fmt.Println(stripe.Render(st, lay))
	fmt.Println("\n(a real array would now enable the stripe for data traffic)")
}
