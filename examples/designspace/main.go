// designspace sweeps racetrack stripe configurations (segment number x
// segment length for 32/64/128-bit stripes) and prints the three-way
// trade-off between reliability, area, and shift latency for p-ECC-S
// adaptive versus p-ECC-O — the combined view of the paper's Figs. 12/13/15.
//
// It then re-runs the simulation-backed half of the design space (the
// relative shift latency of Fig 14) through the parallel experiment
// engine, twice against the same content-addressed cache, to show the
// sweep machinery the CLIs use: a worker pool sized to the host, and a
// warm re-run that serves every simulation from the cache.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"racetrack/hifi/internal/engine"
	"racetrack/hifi/internal/experiments"
)

func main() {
	fmt.Println("Design-space exploration: p-ECC-S adaptive vs p-ECC-O")
	fmt.Println("(reliability from Fig 12, area from Fig 13, latency from Fig 15)")
	fmt.Println()

	m12 := indexByConfig(experiments.Fig12())
	m13 := indexByConfig(experiments.Fig13())
	m15 := indexByConfig(experiments.Fig15())

	fmt.Printf("%-8s %-5s | %-22s | %-20s | %-20s\n",
		"config", "bits", "DUE MTTF (s) S / O", "area F2/b S / O", "norm latency S / O")
	for _, key := range configOrder(experiments.Fig12()) {
		r12 := m12[key]
		r13 := m13[key]
		r15 := m15[key]
		fmt.Printf("%-8s %-5s | %10s / %-9s | %8s / %-9s | %8s / %-9s\n",
			key, r12[1],
			r12[2], r12[3],
			r13[3], r13[4],
			r15[2], r15[3])
	}

	fmt.Println()
	fmt.Println("Reading the table (matches the paper's conclusions):")
	fmt.Println("  - p-ECC-O always has the highest MTTF (1-step operations) but")
	fmt.Println("    pays up to several times the shift latency on long segments.")
	fmt.Println("  - p-ECC area overhead grows with segment length; p-ECC-O's is")
	fmt.Println("    constant, so it wins area for Lseg >= 16.")
	fmt.Println("  - p-ECC-S adaptive keeps latency within a few percent of the")
	fmt.Println("    unconstrained shift while meeting the 10-year DUE target.")

	// Part two: the simulated corner of the design space, driven by the
	// parallel experiment engine. Each (scheme, workload) tuple becomes a
	// cacheable job; the second pass hits the cache for every one of them
	// and must print the identical table.
	fmt.Println()
	fmt.Printf("Simulated shift latency (Fig 14, scaled) via the experiment engine, %d workers:\n", runtime.NumCPU())

	dir, err := os.MkdirTemp("", "designspace-cache-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sweep := func() (experiments.Table, *engine.Engine, time.Duration) {
		cache, err := engine.OpenCache(dir, "designspace")
		if err != nil {
			log.Fatal(err)
		}
		opts := experiments.QuickRunOpts()
		opts.Eng = engine.New(engine.Options{Workers: runtime.NumCPU(), Cache: cache})
		start := time.Now()
		tab := experiments.Fig14(opts)
		return tab, opts.Eng, time.Since(start)
	}

	cold, coldEng, coldT := sweep()
	fmt.Println()
	fmt.Println(cold.String())
	fmt.Printf("cold: %v  (%s)\n", coldT.Round(time.Millisecond), coldEng.Summary())

	warm, warmEng, warmT := sweep()
	fmt.Printf("warm: %v  (%s)\n", warmT.Round(time.Millisecond), warmEng.Summary())
	fmt.Printf("warm table identical to cold: %v\n", warm.String() == cold.String())
}

func indexByConfig(t experiments.Table) map[string][]string {
	out := make(map[string][]string, len(t.Rows))
	for _, r := range t.Rows {
		out[r[0]] = r
	}
	return out
}

func configOrder(t experiments.Table) []string {
	var keys []string
	for _, r := range t.Rows {
		keys = append(keys, r[0])
	}
	return keys
}
