// Quickstart: build a protected racetrack memory, write and read lines,
// then crank up the device error rate to watch the protection machinery
// (p-ECC detection, correction shifts, DUE invalidation) actually work.
package main

import (
	"bytes"
	"fmt"
	"log"

	hifi "racetrack/hifi"
)

func main() {
	// 64KB of racetrack memory with the paper's recommended protection:
	// STS + SECDED p-ECC + adaptive safe-distance shift architecture.
	mem, err := hifi.New(64<<10, hifi.Config{Scheme: hifi.SchemePECCSAdaptive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("racetrack memory: %d KB, %d-byte lines\n", mem.Capacity()>>10, mem.LineBytes())

	// Write a few lines at different in-segment offsets (each triggers a
	// physical shift of the owning stripe group).
	for i := int64(0); i < 8; i++ {
		line := bytes.Repeat([]byte{byte('A' + i)}, mem.LineBytes())
		if err := mem.WriteLine(i*64, line); err != nil {
			log.Fatal(err)
		}
	}
	// Read them back in reverse order (more shifting).
	for i := int64(7); i >= 0; i-- {
		data, valid, err := mem.ReadLine(i * 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("line %d: %q valid=%v\n", i, data[0], valid)
	}
	fmt.Printf("\nclean run: %v\n", mem.Stats())

	// Now a memory with error rates inflated 1000x so position errors are
	// observable in a short run; the protection detects and corrects them.
	noisy, err := hifi.New(64<<10, hifi.Config{
		Scheme:     hifi.SchemePECCSAdaptive,
		ErrorScale: 1000,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC3}, noisy.LineBytes())
	if err := noisy.WriteLine(0, payload); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, _, err := noisy.ReadLine(int64(i%64) * 64); err != nil {
			log.Fatal(err)
		}
	}
	got, valid, _ := noisy.ReadLine(0)
	fmt.Printf("\nnoisy run (1000x rates): %v\n", noisy.Stats())
	fmt.Printf("payload intact after %d corrections: %v (valid=%v)\n",
		noisy.Stats().Corrections, bytes.Equal(got, payload), valid)

	// The same traffic on an unprotected baseline accumulates silent
	// misalignment: the motivating failure of the paper.
	raw, err := hifi.New(64<<10, hifi.Config{
		Scheme:     hifi.SchemeBaseline,
		ErrorScale: 1000,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	raw.WriteLine(0, payload)
	for i := 0; i < 5000; i++ {
		raw.ReadLine(int64(i%64) * 64)
	}
	fmt.Printf("\nunprotected baseline: %v\n", raw.Stats())
	fmt.Printf("silent misalignments: %d (every one is silent data corruption)\n",
		raw.Stats().SilentErrors)

	// Analytic reliability at a realistic LLC intensity.
	sdc, due := hifi.Reliability(hifi.SchemePECCSAdaptive, 8, 50e6)
	fmt.Printf("\nanalytic MTTF at 50M shifts/s: SDC %.3g years, DUE %.3g years\n",
		hifi.YearsMTTF(sdc), hifi.YearsMTTF(due))
}
